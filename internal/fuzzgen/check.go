package fuzzgen

import (
	"bytes"
	"fmt"

	"repro/internal/engine"
	"repro/internal/litmus"
	"repro/internal/mem"
	"repro/internal/oracle"
)

// The three execution engines every case runs through. The oracle run
// uses the default fast-forward engine on the single-block litmus
// machine; the differential trio runs on a two-block machine so the
// block-parallel engine actually shards.
const (
	engFastForward = iota
	engSerial
	engBlockParallel
	numEngines
)

var engineNames = [...]string{"fast-forward", "serial", "block-parallel"}

// EngineNames lists the differential engines in run order.
func EngineNames() []string { return append([]string(nil), engineNames[:]...) }

// runResult is one execution's observable outcome.
type runResult struct {
	res  *engine.Result
	regs []mem.Word
	mem  []mem.Word
	viol []oracle.Violation
	err  error
}

// runOne executes t under cfg on a fresh blocks×coresPerBlock litmus
// machine with the chosen engine, optionally observed by the shadow-SC
// oracle. Execution is fully deterministic: same inputs, same outcome.
// Panics become errors: the shrinker legitimately tries structurally
// broken candidates (an unpaired lock release, say), and the machine
// model rejects those by panicking.
func runOne(t litmus.Test, cfg litmus.Config, blocks, coresPerBlock, eng int, withOracle bool) (out runResult) {
	defer func() {
		if r := recover(); r != nil {
			out = runResult{err: fmt.Errorf("panic: %v", r)}
		}
	}()
	return runOneInner(t, cfg, blocks, coresPerBlock, eng, withOracle)
}

func runOneInner(t litmus.Test, cfg litmus.Config, blocks, coresPerBlock, eng int, withOracle bool) runResult {
	h := litmus.NewHierarchy(cfg, blocks, coresPerBlock)
	if eng == engBlockParallel {
		h.SetBlockParallel(true)
	}
	regs := make([]mem.Word, t.Regs)
	for i := range regs {
		regs[i] = litmus.UnsetReg
	}
	e := engine.New(h, litmus.Guests(t, cfg, regs))
	var o *oracle.Oracle
	if withOracle {
		o = oracle.New(len(t.Threads))
		e.SetObserver(o)
	}
	if eng == engSerial {
		e.SetScheduler(engine.MinTimeScheduler{})
	}
	res, err := e.Run()
	if err != nil {
		return runResult{err: err}
	}
	h.Drain()
	if o != nil {
		o.CheckFinal(h.Memory())
	}
	out := runResult{res: res, regs: regs, mem: make([]mem.Word, t.Vars)}
	for v := 0; v < t.Vars; v++ {
		out.mem[v] = h.Memory().ReadWord(t.AddrOf(litmus.VarID(v)))
	}
	if o != nil {
		out.viol = o.Violations()
	}
	return out
}

// doc renders the run as a canonical byte document: simulated time,
// stall and traffic breakdowns, op counts, final registers, and final
// memory. Two runs are "the same execution" iff their docs are equal.
func (r runResult) doc() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "cycles=%d\nstalls=%v\nperthread=%v\ntraffic=%v\nops=%v\nregs=%v\nmem=%v\n",
		r.res.Cycles, r.res.Stalls, r.res.PerThread, r.res.Traffic, r.res.Ops, r.regs, r.mem)
	return b.Bytes()
}

// differentialBlocks configures the tri-engine machine: two blocks of
// two cores, so up to four threads run and the block-parallel engine
// has two real shards.
const (
	differentialBlocks = 2
	differentialCores  = 2
)

// CheckResult is the outcome of checking one test under one config.
type CheckResult struct {
	// Result is the oracle run's engine result (timings, traffic).
	Result *engine.Result
	// Violations are the oracle's findings on the fast-forward run.
	Violations []oracle.Violation
	// OracleDoc is the oracle run's canonical document (used by the
	// shrinker's determinism re-validation).
	OracleDoc []byte
	// Diverged describes a tri-engine document mismatch; empty when all
	// three engines agreed byte for byte.
	Diverged string
	// Err is a run failure (deadlock, livelock, panic surfaced as error).
	Err error
}

// Check runs t under cfg through the oracle and the three engines.
func Check(t litmus.Test, cfg litmus.Config) CheckResult {
	or := runOne(t, cfg, 1, litmusMachineCores, engFastForward, true)
	if or.err != nil {
		return CheckResult{Err: fmt.Errorf("oracle run: %w", or.err)}
	}
	out := CheckResult{Result: or.res, Violations: or.viol, OracleDoc: or.doc()}

	var docs [numEngines][]byte
	for eng := 0; eng < numEngines; eng++ {
		rr := runOne(t, cfg, differentialBlocks, differentialCores, eng, false)
		if rr.err != nil {
			out.Err = fmt.Errorf("%s run: %w", engineNames[eng], rr.err)
			return out
		}
		docs[eng] = rr.doc()
	}
	for eng := 1; eng < numEngines; eng++ {
		if !bytes.Equal(docs[0], docs[eng]) {
			out.Diverged = fmt.Sprintf("%s vs %s:\n--- %s\n%s--- %s\n%s",
				engineNames[0], engineNames[eng], engineNames[0], docs[0], engineNames[eng], docs[eng])
			break
		}
	}
	return out
}

// litmusMachineCores matches the litmus explorer's 4-core single block.
const litmusMachineCores = 4

// Mask reasons, ordered strongest claim first (the analysis stops at the
// first that applies).
const (
	// MaskNothingPending: the weakened writeback had nothing left to
	// publish — every store before it was already published.
	MaskNothingPending = "nothing-pending"
	// MaskNoConsumer: no other thread ever touches the covered
	// variables, and the final drain writes the private copy back.
	MaskNoConsumer = "no-consumer"
	// MaskRepublished: every covered variable is published again by a
	// later writeback in the same thread before its next release, so no
	// synchronized reader can observe the gap.
	MaskRepublished = "republished"
	// MaskNoStaleRead: the weakened invalidation covers nothing the
	// thread goes on to read.
	MaskNoStaleRead = "no-stale-read"
	// MaskNoStaleCopy: the reader never cached the covered variables
	// before the weakened invalidation, so its first access fetches the
	// published value anyway.
	MaskNoStaleCopy = "no-stale-copy"
	// MaskBenignSchedule: no static rule applies, but the deterministic
	// schedule never exposed the gap — the oracle checked every
	// synchronized read and the final image and found them SC-correct.
	MaskBenignSchedule = "benign-on-schedule"
)

// Verdict is the judgment of one mutant under one config.
type Verdict struct {
	// Detected: the oracle flagged at least one violation, all of them
	// attributed to the mutation site.
	Detected bool
	// MaskReason explains an undetected mutant (one of the Mask*
	// constants).
	MaskReason string
	// BadAttribution is non-empty when a violation's class, thread, or
	// address does not match the mutation site — a campaign failure.
	BadAttribution string
	// Violations are the oracle's findings (empty when undetected).
	Violations []oracle.Violation
	// Diverged / Err propagate tri-engine mismatches and run failures.
	Diverged string
	Err      error
}

// Judge checks mutant m (of parent program p) under cfg and classifies
// the outcome. Coverage and masking are computed on the parent's
// annotated instruction stream — the mutation site's coordinates live
// there.
func Judge(p Program, m Mutant, cfg litmus.Config) Verdict {
	res := Check(m.Test, cfg)
	v := Verdict{Violations: res.Violations, Diverged: res.Diverged, Err: res.Err}
	if res.Err != nil || res.Diverged != "" {
		return v
	}
	if len(res.Violations) > 0 {
		v.Detected = true
		v.BadAttribution = attribute(p, m.Site, res.Violations)
		return v
	}
	v.MaskReason = maskReason(p, m.Site)
	return v
}

// attribute checks every violation against the mutation site: the class
// must match the weakened side, the blamed thread must be the mutated
// one (lost updates blame the overwritten writer instead, so there the
// address alone ties the violation to the site), and the address must
// fall inside the site's coverage. Returns a description of the first
// mismatch, or "".
func attribute(p Program, s Site, viol []oracle.Violation) string {
	var cov map[litmus.VarID]bool
	if s.Side == SideWB {
		cov = wbCoverage(p.Test, s)
		propagateDMA(p.Test, cov)
	} else {
		cov = invCoverage(p.Test, s)
	}
	for _, v := range viol {
		vr, ok := p.Test.VarOfAddr(v.Addr)
		if !ok || !cov[vr] {
			return fmt.Sprintf("violation %v at addr 0x%x outside the %s-side coverage of site t%d.%d (%s)",
				v.Class, uint32(v.Addr), s.Side, s.Thread, s.Index, s.Class)
		}
		switch {
		case s.Side == SideWB && v.Class == oracle.MissingWB && v.Writer == s.Thread:
		case s.Side == SideWB && v.Class == oracle.LostUpdate:
		case s.Side == SideINV && v.Class == oracle.MissingINV && v.Reader == s.Thread:
		default:
			return fmt.Sprintf("violation %v (reader %d, writer %d) does not match %s-side site t%d.%d (%s)",
				v.Class, v.Reader, v.Writer, s.Side, s.Thread, s.Index, s.Class)
		}
	}
	return ""
}

// maskReason explains why the mutant produced no violation, preferring
// static proofs over the dynamic fallback.
func maskReason(p Program, s Site) string {
	t := p.Test
	if s.Side == SideWB {
		cov := wbCoverage(t, s)
		if len(cov) == 0 {
			return MaskNothingPending
		}
		if !consumed(t, s.Thread, cov) {
			return MaskNoConsumer
		}
		if republished(t, s, cov) {
			return MaskRepublished
		}
		return MaskBenignSchedule
	}
	cov := invCoverage(t, s)
	if len(cov) == 0 {
		return MaskNoStaleRead
	}
	if !t.Packed && !accessedBefore(t, s, cov) {
		return MaskNoStaleCopy
	}
	return MaskBenignSchedule
}

// consumed reports whether any thread other than owner loads, stores,
// spins on, or DMA-reads a covered variable.
func consumed(t litmus.Test, owner int, cov map[litmus.VarID]bool) bool {
	for ti, th := range t.Threads {
		for _, in := range th {
			switch in.Kind {
			case litmus.ILoad, litmus.IStore, litmus.ISpin:
				if ti != owner && cov[in.Var] {
					return true
				}
			case litmus.IDMA:
				// A DMA reads its source from the shared levels on any
				// thread — the initiator included.
				if cov[in.Src] {
					return true
				}
			}
		}
	}
	return false
}

// republished reports whether, scanning forward from the site, every
// covered variable is written back again before the thread's next
// release-side synchronization — in which case no synchronized reader
// can observe the dropped publication. The annotated release forms
// publish before they release, so a publishing sync clears its own
// pending set first.
func republished(t litmus.Test, s Site, cov map[litmus.VarID]bool) bool {
	pending := make(map[litmus.VarID]bool, len(cov))
	for v := range cov {
		pending[v] = true
	}
	for i := s.Index + 1; i < len(t.Threads[s.Thread]); i++ {
		in := t.Threads[s.Thread][i]
		switch in.Kind {
		case litmus.IWB, litmus.IPublish:
			delete(pending, in.Var)
			for v := range covLine(t, in.Var) {
				delete(pending, v)
			}
		case litmus.INotifyFlag, litmus.ICSExit, litmus.IBarrierSync:
			// Whole-cache writeback, then release: everything pending is
			// published before any reader can synchronize.
			return true
		case litmus.IFlagSet, litmus.IRelease:
			// Raw release with publications still pending: a reader may
			// synchronize past the gap.
			if len(pending) > 0 {
				return false
			}
			return true
		}
		if len(pending) == 0 {
			return true
		}
	}
	// Thread ends with pending publications and no further release: only
	// racy accesses could observe them, which is not a proof.
	return len(pending) == 0
}

// propagateDMA extends a wb-side coverage set through DMA copies: a DMA
// whose source is covered reads the stale shared copy the dropped
// write-back left behind and plants it at the destination, so the
// destination (and its packed line mates) inherits the coverage.
// Iterated to a fixpoint to follow copy chains; like wbCoverage's
// IPublish handling this only enlarges the set, a sound superset.
func propagateDMA(t litmus.Test, cov map[litmus.VarID]bool) {
	for changed := true; changed; {
		changed = false
		for _, th := range t.Threads {
			for _, in := range th {
				if in.Kind != litmus.IDMA || !cov[in.Src] || cov[in.Var] {
					continue
				}
				cov[in.Var] = true
				addLineMates(t, in.Var, cov)
				changed = true
			}
		}
	}
}

// covLine returns v's packed-layout line mates (empty when unpacked).
func covLine(t litmus.Test, v litmus.VarID) map[litmus.VarID]bool {
	out := make(map[litmus.VarID]bool)
	addLineMates(t, v, out)
	return out
}

// accessedBefore reports whether the site's thread touches a covered
// variable before the site — a private copy the weakened invalidation
// would have cleaned.
func accessedBefore(t litmus.Test, s Site, cov map[litmus.VarID]bool) bool {
	for i := 0; i < s.Index; i++ {
		in := t.Threads[s.Thread][i]
		switch in.Kind {
		case litmus.ILoad, litmus.IStore, litmus.ISpin:
			if cov[in.Var] {
				return true
			}
		}
	}
	return false
}
