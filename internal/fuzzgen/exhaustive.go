package fuzzgen

import (
	"fmt"

	"repro/internal/litmus"
	"repro/internal/mem"
	"repro/internal/oracle"
)

// MaskProvenExhaustive: the DPOR explorer covered the mutant's entire
// schedule space and no schedule violated — the dropped annotation is
// provably unobservable, not merely benign on one schedule. This is the
// strongest mask claim and the only one JudgeExhaustive issues.
const MaskProvenExhaustive = "masked-exhaustive"

// JudgeExhaustive judges mutant m of parent p under cfg by exhaustive
// DPOR exploration instead of the single deterministic schedule Judge
// runs: Detected iff any schedule violates (attributed to the mutation
// site exactly as Judge attributes), and an undetected mutant is proven
// masked (MaskProvenExhaustive). A non-exhaustive exploration (error,
// truncation, or the schedule cap) is a judgment failure, never a mask.
func JudgeExhaustive(p Program, m Mutant, cfg litmus.Config, opts litmus.Options) Verdict {
	opts.Algo = litmus.AlgoDPOR
	rep, err := litmus.Explore(m.Test, cfg, opts)
	if err != nil {
		return Verdict{Err: err}
	}
	if rep.ErrorRuns > 0 || rep.Truncated > 0 || rep.Capped {
		return Verdict{Err: fmt.Errorf("fuzzgen %s: exploration not exhaustive (%d errors, %d truncated, capped=%v)",
			m.Test.Name, rep.ErrorRuns, rep.Truncated, rep.Capped)}
	}
	if rep.ViolationSchedules > 0 {
		vs := reportViolations(rep)
		v := Verdict{Detected: true, Violations: vs}
		v.BadAttribution = attribute(p, m.Site, vs)
		return v
	}
	return Verdict{MaskReason: MaskProvenExhaustive}
}

// reportViolations reconstructs oracle-level violation records from the
// report's kept entries — the fields attribute() inspects (class,
// address, reader, writer) round-trip through ViolationInfo.
func reportViolations(rep *litmus.Report) []oracle.Violation {
	out := make([]oracle.Violation, 0, len(rep.Violations))
	for _, vi := range rep.Violations {
		out = append(out, oracle.Violation{
			Class:  oracle.Class(vi.Class),
			Addr:   mem.Addr(vi.Addr),
			Reader: vi.Reader,
			Writer: vi.Writer,
		})
	}
	return out
}

// enumMutationClass maps an annotated sync kind to its weakening class.
var enumMutationClass = map[litmus.InstrKind]struct {
	class string
	side  Side
}{
	litmus.INotifyFlag: {"weaken-notify", SideWB},
	litmus.ICSExit:     {"weaken-csexit", SideWB},
	litmus.IAwaitFlag:  {"weaken-await", SideINV},
	litmus.ICSEnter:    {"weaken-csenter", SideINV},
}

// EnumeratedMutants adapts an enumerated test (litmus.Enumerate) into
// judged mutants: one per annotated sync instruction, each carrying the
// site coordinates JudgeExhaustive needs for attribution. Wrap the
// parent in Program{Test: t} when judging.
func EnumeratedMutants(t litmus.Test) []Mutant {
	var ms []Mutant
	for ti, th := range t.Threads {
		for ii, in := range th {
			mc, ok := enumMutationClass[in.Kind]
			if !ok {
				continue
			}
			s := Site{Thread: ti, Index: ii, Class: mc.class, Side: mc.side}
			ms = append(ms, Mutant{Site: s, Test: mutate(t, s)})
		}
	}
	return ms
}
