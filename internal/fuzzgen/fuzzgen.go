// Package fuzzgen is the annotation-robustness fuzzer: a deterministic,
// seed-addressed generator of random concurrent guest programs in the
// internal/litmus DSL, an annotation-mutation engine that weakens one
// writeback or invalidation site at a time, and a checking harness that
// runs every case under the shadow-SC coherence oracle and across the
// three execution engines (synchronous serial, event-driven
// fast-forward, block-parallel).
//
// The campaign's claims, per case and configuration:
//
//   - a correctly annotated program is violation-free under the oracle;
//   - an under-annotated mutant is either detected — with the violation's
//     class, thread, and address attributed to the mutation site — or
//     provably masked (no consumer, republication before the next
//     release, no stale private copy, or benign on the deterministic
//     schedule);
//   - all three engines produce byte-identical result documents for
//     every program, annotated or mutated.
//
// Any breach shrinks (shrink.go) to a minimal litmus-DSL repro and
// surfaces as a runner.ReproError, so a failing fuzz cell is a
// self-contained regression test.
package fuzzgen

import (
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/litmus"
	"repro/internal/mem"
)

// rng is the fuzzer's deterministic PRNG: iterated SplitMix64, shared
// with the fault-injection grammar so the whole robustness layer draws
// from one dependency-free stream.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	// Pre-mix so small consecutive seeds land far apart in the stream.
	return &rng{s: faultinject.SplitMix64(seed ^ 0x632be59bd9b4e019)}
}

func (r *rng) next() uint64 {
	r.s = faultinject.SplitMix64(r.s)
	return r.s
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// chance reports true with probability pct/100.
func (r *rng) chance(pct int) bool { return r.intn(100) < pct }

// Side says which half of the publication protocol a mutation weakens.
type Side int

const (
	// SideWB mutations drop a writeback: stores stay private, so the
	// oracle blames the writer (missing-wb or lost-update).
	SideWB Side = iota
	// SideINV mutations drop an invalidation: stale private copies
	// survive, so the oracle blames the reader (missing-inv).
	SideINV
)

func (s Side) String() string {
	if s == SideWB {
		return "wb"
	}
	return "inv"
}

// Site is one eligible mutation site in a generated program.
type Site struct {
	// Thread and Index locate the instruction in Test.Threads.
	Thread, Index int
	// Class labels the mutation the site admits (the E10 table rows):
	// drop-wb, drop-inv, weaken-notify, weaken-await, weaken-csenter,
	// weaken-csexit.
	Class string
	// Side is the protocol side the mutation weakens.
	Side Side
}

// Program is one generated fuzz case: a correctly annotated test plus
// its eligible mutation sites.
type Program struct {
	Seed  uint64
	Test  litmus.Test
	Sites []Site
}

// Generation bounds. Motifs append to every thread in one global order,
// so cross-thread blocking (flags, locks, barriers) can never form a
// cycle: a thread only waits on events produced in its own or an earlier
// motif segment.
const (
	minThreads = 2
	maxThreads = 4
	maxMotifs  = 3
)

// builder accumulates a program under construction.
type builder struct {
	threads [][]litmus.Instr
	sites   []Site
	vars    int
	regs    int
	ids     int
	val     mem.Word
	packed  bool
}

func (b *builder) newVar() litmus.VarID { v := litmus.VarID(b.vars); b.vars++; return v }
func (b *builder) newReg() litmus.Reg   { r := litmus.Reg(b.regs); b.regs++; return r }
func (b *builder) newID() int           { id := b.ids; b.ids++; return id }

// newVal returns a globally unique store value, so every stale read and
// lost update is attributable to exactly one write.
func (b *builder) newVal() mem.Word { b.val++; return b.val }

// emit appends in to thread t; site, when non-empty, marks it mutable.
func (b *builder) emit(t int, in litmus.Instr, class string, side Side) {
	if class != "" {
		b.sites = append(b.sites, Site{Thread: t, Index: len(b.threads[t]), Class: class, Side: side})
	}
	b.threads[t] = append(b.threads[t], in)
}

// Gen deterministically generates the program addressed by seed: the
// same seed always yields the same program, bit for bit, so a seed range
// is a corpus and a failing seed is a bug report.
func Gen(seed uint64) Program {
	r := newRNG(seed)
	n := minThreads + r.intn(maxThreads-minThreads+1)
	b := &builder{threads: make([][]litmus.Instr, n)}
	// A quarter of the corpus uses the packed (false-sharing) layout:
	// variables share cache lines word by word, exercising line-granular
	// WB/INV interactions. DMA is line-granular and therefore excluded
	// from packed programs.
	b.packed = r.chance(25)

	motifs := 1 + r.intn(maxMotifs)
	for i := 0; i < motifs; i++ {
		switch k := r.intn(4); {
		case k == 3 && !b.packed:
			b.motifDMA(r)
		case k == 3:
			b.motifMP(r)
		case k == 0:
			b.motifMP(r)
		case k == 1:
			b.motifLock(r)
		default:
			b.motifBarrier(r)
		}
	}
	if r.chance(60) {
		b.motifPrivate(r)
	}

	t := litmus.Test{
		Name:    fmt.Sprintf("fuzz-s%d", seed),
		Vars:    b.vars,
		Regs:    b.regs,
		Threads: b.threads,
		Packed:  b.packed,
	}
	for v := 0; v < b.vars; v++ {
		t.Final = append(t.Final, litmus.VarID(v))
	}
	return Program{Seed: seed, Test: t, Sites: b.sites}
}

// motifMP is flag-based message passing: a writer publishes one or two
// variables and notifies; a reader awaits and loads them. The annotated
// NotifyFlag/AwaitFlag pair carries the writeback and invalidation.
func (b *builder) motifMP(r *rng) {
	n := len(b.threads)
	w := r.intn(n)
	rd := (w + 1 + r.intn(n-1)) % n
	flag := b.newID()
	fv := b.newVal()
	vars := []litmus.VarID{b.newVar()}
	if r.chance(40) {
		vars = append(vars, b.newVar())
	}
	// Optional racy prelude: the reader samples the first variable
	// before synchronizing. The oracle skips the racy read; the load
	// just seeds a stale private copy for the invalidation side to
	// clean up.
	if r.chance(30) {
		b.emit(rd, litmus.Load(vars[0], b.newReg()), "", 0)
	}
	for _, v := range vars {
		b.emit(w, litmus.Store(v, b.newVal()), "", 0)
	}
	if r.chance(30) {
		// A redundant early writeback: always republished by the
		// NotifyFlag below, so its drop must be judged masked.
		b.emit(w, litmus.WB(vars[0]), "drop-wb", SideWB)
	}
	if r.chance(20) {
		b.emit(w, litmus.Compute(mem.Word(1+r.intn(3))), "", 0)
	}
	b.emit(w, litmus.NotifyFlag(flag, fv), "weaken-notify", SideWB)
	b.emit(rd, litmus.AwaitFlag(flag, fv), "weaken-await", SideINV)
	for _, v := range vars {
		b.emit(rd, litmus.Load(v, b.newReg()), "", 0)
	}
}

// motifLock is a critical-section conflict: two or more participants
// take the same lock and access a shared protected variable; at least
// one writes. CSEnter carries the invalidation, CSExit the writeback.
func (b *builder) motifLock(r *rng) {
	n := len(b.threads)
	k := 2 + r.intn(n-1)
	first := r.intn(n)
	lock := b.newID()
	c := b.newVar()
	for i := 0; i < k; i++ {
		t := (first + i) % n
		b.emit(t, litmus.CSEnter(lock), "weaken-csenter", SideINV)
		if i == 0 || r.chance(50) {
			b.emit(t, litmus.Store(c, b.newVal()), "", 0)
		} else {
			b.emit(t, litmus.Load(c, b.newReg()), "", 0)
		}
		if r.chance(30) {
			b.emit(t, litmus.Load(c, b.newReg()), "", 0)
		}
		b.emit(t, litmus.CSExit(lock), "weaken-csexit", SideWB)
	}
}

// motifBarrier is all-to-all exchange: every thread stores its own
// variable, crosses one barrier, and loads its neighbor's. BarrierSync
// lowers to WB ALL + barrier + INV ALL and is not a mutation site (the
// DSL has no raw rendezvous to weaken it to).
func (b *builder) motifBarrier(r *rng) {
	n := len(b.threads)
	bid := b.newID()
	vars := make([]litmus.VarID, n)
	for t := 0; t < n; t++ {
		vars[t] = b.newVar()
		b.emit(t, litmus.Store(vars[t], b.newVal()), "", 0)
	}
	for t := 0; t < n; t++ {
		b.emit(t, litmus.BarrierSync(bid), "", 0)
	}
	for t := 0; t < n; t++ {
		b.emit(t, litmus.Load(vars[(t+1)%n], b.newReg()), "", 0)
	}
}

// motifDMA is inter-block communication: a writer publishes a source
// line, DMAs it into block 0's L2, and notifies; a reader in block 0
// awaits and loads the destination. The pinned IWB before the DMA is a
// hard correctness prerequisite (the engine copies from the shared
// levels), so it is not a mutation site.
func (b *builder) motifDMA(r *rng) {
	// Writer and reader both live in the DMA's target block: threads 0
	// and 1 sit in block 0 on both the oracle and the differential
	// machines. A foreign-block initiator would make the transfer
	// cross-block, which the block-parallel engine rejects as a
	// reordering hazard unless the target block is synced first.
	w := r.intn(2)
	rd := 1 - w
	src, dst := b.newVar(), b.newVar()
	flag := b.newID()
	fv := b.newVal()
	b.emit(w, litmus.Store(src, b.newVal()), "", 0)
	b.emit(w, litmus.WB(src), "", 0)
	b.emit(w, litmus.DMA(dst, src, 0), "", 0)
	b.emit(w, litmus.NotifyFlag(flag, fv), "weaken-notify", SideWB)
	b.emit(rd, litmus.AwaitFlag(flag, fv), "weaken-await", SideINV)
	b.emit(rd, litmus.Load(dst, b.newReg()), "", 0)
}

// motifPrivate is per-thread noise: private stores, loads, and compute
// that widen cache footprints without inter-thread communication.
func (b *builder) motifPrivate(r *rng) {
	for t := range b.threads {
		if !r.chance(70) {
			continue
		}
		v := b.newVar()
		b.emit(t, litmus.Store(v, b.newVal()), "", 0)
		if r.chance(50) {
			b.emit(t, litmus.Compute(mem.Word(1+r.intn(2))), "", 0)
		}
		b.emit(t, litmus.Load(v, b.newReg()), "", 0)
	}
}
