package fuzzgen

import (
	"testing"

	"repro/internal/litmus"
)

// FuzzAnnotatedProgram is the Go-native half of the campaign: the fuzz
// engine explores the seed space and every generated, correctly
// annotated program must run violation-free and engine-identically.
// A failing input is reported with its shrunk litmus-DSL repro, so the
// corpus entry is actionable without re-running the shrinker by hand.
//
// CI runs this under -fuzz with a short budget; without -fuzz it
// regression-checks the seed corpus below.
func FuzzAnnotatedProgram(f *testing.F) {
	for seed := uint64(1); seed <= 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		p := Gen(seed)
		for _, cfg := range []litmus.Config{litmus.Base, litmus.BMI} {
			res := Check(p.Test, cfg)
			var sig Signature
			switch {
			case res.Err != nil:
				sig = Signature{Kind: "error"}
			case len(res.Violations) > 0:
				sig = Signature{Kind: "violation", Class: string(res.Violations[0].Class)}
			case res.Diverged != "":
				sig = Signature{Kind: "diverge"}
			default:
				continue
			}
			shrunk := Shrink(p.Test, cfg, sig)
			t.Fatalf("seed %d under %s: annotated program failed (%s)\nerr=%v violations=%v diverged=%q\nshrunk repro:\n%s",
				seed, cfg.Name, sig, res.Err, res.Violations, res.Diverged,
				ReproText(shrunk, cfg, sig))
		}
	})
}
