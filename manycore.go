package hic

import (
	"context"
	"fmt"

	"repro/internal/apps/jacobi"
	"repro/internal/apps/nas"
	"repro/internal/compiler"
	"repro/internal/envelope"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/topo"
)

// This file implements the many-core block-scaling experiment (E7): the
// same Model 2 applications as the inter-block evaluation, run on custom
// machines from 1 block up to 128 blocks of 8 cores (1024 cores), under
// the level-adaptive Addr+L mode. The experiment exists to exercise the
// simulator itself at scale — the block-parallel engine makes the large
// cells tractable, and the curve documents how simulated execution time
// scales as the same problem is spread over more blocks.

// DefaultManycoreCoresPerBlock matches the paper's 8-core blocks.
const DefaultManycoreCoresPerBlock = 8

// NewManycoreMachine returns a custom machine with the given block count
// and cores per block (Table III parameters, 4 L3 banks), calibrated like
// the intra/inter machines.
func NewManycoreMachine(blocks, coresPerBlock int) *Machine {
	m := topo.NewCustom(blocks, coresPerBlock, 4, topo.DefaultParams())
	m.Params.TraversalPerFrame = 4
	return m
}

// ManycoreBlockCounts returns the powers of two from 1 through max (max
// itself included when it is a power of two).
func ManycoreBlockCounts(max int) []int {
	var counts []int
	for b := 1; b <= max; b *= 2 {
		counts = append(counts, b)
	}
	return counts
}

// ManycoreWorkloads returns the block-scaling applications for a machine
// with the given core count: Jacobi (nearest-neighbor exchange, the
// level-adaptive best case) and NAS EP (reduction-only communication).
// Every core runs one thread.
func ManycoreWorkloads(s Scale, threads int) []*IRWorkload {
	jsz := jacobi.Test
	if s == ScaleBench {
		jsz = jacobi.Bench
	}
	return []*IRWorkload{
		jacobi.New(jsz, threads),
		nas.EP(nasSize(s), threads),
	}
}

// ManycoreResult is the outcome of the block-scaling experiment.
type ManycoreResult struct {
	// Curve holds one group per application and one bar per block count;
	// the single segment is the simulated execution time normalized to
	// the smallest machine in the sweep (strong scaling: the problem
	// size is fixed while cores grow).
	Curve *Figure
	// Raw holds every successful run's engine result, keyed by app then
	// block count.
	Raw map[string]map[int]*Result
	// Runs holds one record per run in sweep order (errors included).
	Runs []runner.RunRecord
}

// manycoreConfig is the grid's config key for a block count.
func manycoreConfig(blocks int) string { return fmt.Sprintf("blocks-%d", blocks) }

// manycoreTasks builds one task per (application, block count). Each cell
// constructs its own machine and hierarchy; the block-parallel engine is
// engaged per RunOptions like any other sweep.
func manycoreTasks(s Scale, blockCounts []int, coresPerBlock int, opts RunOptions) []runner.Task {
	var tasks []runner.Task
	names := make(map[string]bool)
	for _, w := range ManycoreWorkloads(s, coresPerBlock) {
		names[w.Name] = true
	}
	for name := range names {
		if !opts.wants(name) {
			continue
		}
		name := name
		for _, blocks := range blockCounts {
			blocks := blocks
			tasks = append(tasks, opts.withCache(s, fmt.Sprintf("manycore/%d", coresPerBlock), runner.Task{
				Workload: name,
				Config:   manycoreConfig(blocks),
				Run: func(ctx context.Context) (*runner.Outcome, error) {
					m := NewManycoreMachine(blocks, coresPerBlock)
					var wl *IRWorkload
					for _, w := range ManycoreWorkloads(s, m.NumCores()) {
						if w.Name == name {
							wl = w
						}
					}
					h := NewModeHierarchy(m, ModeAddrL)
					opts.engage(h)
					rec := opts.instrument(h)
					orc, _, err := opts.checks(h, wl.Threads)
					if err != nil {
						return nil, err
					}
					r, err := wl.RunObserved(ctx, h, compiler.ModeAddrL, orc, rec)
					if err != nil {
						opts.finish(name, manycoreConfig(blocks), rec, nil)
						return nil, err
					}
					out := &runner.Outcome{Result: r, Degraded: opts.degradeReason(h, orc)}
					opts.finish(name, manycoreConfig(blocks), rec, out)
					return out, nil
				},
			}))
		}
	}
	// Map iteration order is random; the runner keys cells, but Runs is
	// recorded in task order, so fix it for byte-identical JSON.
	sortTasks(tasks)
	return tasks
}

// sortTasks orders tasks by (workload, config) for deterministic sweep
// records.
func sortTasks(tasks []runner.Task) {
	for i := 1; i < len(tasks); i++ {
		for j := i; j > 0; j-- {
			a, b := tasks[j-1], tasks[j]
			if a.Workload < b.Workload || (a.Workload == b.Workload && a.Config <= b.Config) {
				break
			}
			tasks[j-1], tasks[j] = b, a
		}
	}
}

// RunManycore executes the block-scaling sweep at scale s over the given
// block counts (nil means 1..128) with coresPerBlock cores per block
// (<= 0 means 8), under functional options.
func RunManycore(ctx context.Context, s Scale, blockCounts []int, coresPerBlock int, opts ...Option) (*ManycoreResult, error) {
	return runManycoreOpts(ctx, s, blockCounts, coresPerBlock, NewRunOptions(opts...))
}

// runManycoreOpts is the struct-options form behind RunManycore; error
// semantics match the other sweeps (partial results plus joined per-cell
// errors).
func runManycoreOpts(ctx context.Context, s Scale, blockCounts []int, coresPerBlock int, opts RunOptions) (*ManycoreResult, error) {
	if len(blockCounts) == 0 {
		blockCounts = ManycoreBlockCounts(128)
	}
	if coresPerBlock <= 0 {
		coresPerBlock = DefaultManycoreCoresPerBlock
	}
	grid := runner.Run(ctx, manycoreTasks(s, blockCounts, coresPerBlock, opts), opts.runner())
	res := &ManycoreResult{
		Curve: &Figure{
			Title:      fmt.Sprintf("Block scaling: normalized execution time (%d cores/block, Addr+L)", coresPerBlock),
			Categories: []string{"cycles"},
		},
		Raw:  make(map[string]map[int]*Result),
		Runs: grid.Records(),
	}
	for _, w := range ManycoreWorkloads(s, coresPerBlock) {
		if !opts.wants(w.Name) {
			continue
		}
		res.Raw[w.Name] = make(map[int]*Result)
		for _, blocks := range blockCounts {
			if r := grid.Result(w.Name, manycoreConfig(blocks)); r != nil {
				res.Raw[w.Name][blocks] = r
			}
		}
		// Normalize to the smallest machine by key, so the curve does not
		// depend on completion order.
		base := grid.Result(w.Name, manycoreConfig(blockCounts[0]))
		if base == nil {
			continue
		}
		g := stats.Group{Name: w.Name}
		for _, blocks := range blockCounts {
			r := grid.Result(w.Name, manycoreConfig(blocks))
			if r == nil {
				continue
			}
			g.Bars = append(g.Bars, stats.Bar{
				Label:    manycoreConfig(blocks),
				Segments: []float64{ratio(float64(r.Cycles), float64(base.Cycles))},
			})
		}
		res.Curve.Groups = append(res.Curve.Groups, g)
	}
	return res, grid.Err()
}

// Document serializes the result for the shape checker and external
// tooling.
func (r *ManycoreResult) Document(s Scale) *runner.Document {
	return &runner.Document{
		Schema: envelope.SchemaV2,
		Kind:   envelope.KindResults,
		Scale:  s.Name(),
		Suite:  "manycore",
		Figures: []runner.Figure{
			runner.FigureJSON("manycore", r.Curve),
		},
		Runs: r.Runs,
	}
}
