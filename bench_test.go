package hic

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md's per-experiment index):
//
//	BenchmarkTable1Patterns      — Table I census (E1)
//	BenchmarkStorageOverhead     — Section VII-A storage comparison (E2)
//	BenchmarkFigure9/...         — intra-block normalized execution time (E3)
//	BenchmarkFigure10/...        — intra-block normalized traffic (E4)
//	BenchmarkFigure11/...        — inter-block global WB/INV counts (E5)
//	BenchmarkFigure12/...        — inter-block normalized execution time (E6)
//
// plus the ablation and extension benches DESIGN.md §5 calls out. Paper-
// comparable quantities are emitted as benchmark metrics: simulated cycles
// (sim_cycles), execution time normalized to HCC (norm_vs_hcc), traffic
// normalized to HCC (traffic_vs_hcc), and remaining global-operation
// fractions (frac_vs_addr).

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"repro/internal/annotate"
	"repro/internal/apps/jacobi"
	"repro/internal/apps/nas"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/topo"
)

// benchScale keeps `go test -bench` runs tractable while remaining far
// larger than the unit-test scale.
const benchScale = ScaleBench

var (
	hccCacheMu sync.Mutex
	hccCycles  = map[string]int64{} // app -> HCC cycles at bench scale
)

func hccBaseline(b *testing.B, name string, run func() (*Result, error)) int64 {
	hccCacheMu.Lock()
	defer hccCacheMu.Unlock()
	if c, ok := hccCycles[name]; ok {
		return c
	}
	r, err := run()
	if err != nil {
		b.Fatal(err)
	}
	hccCycles[name] = r.Cycles
	return r.Cycles
}

func BenchmarkTable1Patterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := PatternTable(ScaleTest); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorageOverhead(b *testing.B) {
	var kb float64
	for i := 0; i < b.N; i++ {
		kb = StorageReport().Savings().KB()
	}
	b.ReportMetric(kb, "saved_KB")
}

// BenchmarkFigure9 runs every (application, configuration) pair of the
// intra-block evaluation, reporting simulated cycles and the ratio to HCC.
func BenchmarkFigure9(b *testing.B) {
	for _, w := range IntraWorkloads(benchScale) {
		w := w
		base := hccBaseline(b, w.Name, func() (*Result, error) {
			return w.Run(NewHierarchy(NewIntraMachine(), HCC), HCC)
		})
		for _, cfg := range IntraConfigs {
			cfg := cfg
			b.Run(w.Name+"/"+cfg.Name, func(b *testing.B) {
				var r *Result
				for i := 0; i < b.N; i++ {
					var err error
					r, err = w.Run(NewHierarchy(NewIntraMachine(), cfg), cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.Cycles), "sim_cycles")
				b.ReportMetric(float64(r.Cycles)/float64(base), "norm_vs_hcc")
			})
		}
	}
}

// BenchmarkFigure10 compares HCC and B+M+I network traffic per application.
func BenchmarkFigure10(b *testing.B) {
	for _, w := range IntraWorkloads(benchScale) {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				rh, err := w.Run(NewHierarchy(NewIntraMachine(), HCC), HCC)
				if err != nil {
					b.Fatal(err)
				}
				rb, err := w.Run(NewHierarchy(NewIntraMachine(), BMI), BMI)
				if err != nil {
					b.Fatal(err)
				}
				lf0, wb0, inv0, mem0 := rh.Traffic.Figure10()
				lf1, wb1, inv1, mem1 := rb.Traffic.Figure10()
				ratio = float64(lf1+wb1+inv1+mem1) / float64(lf0+wb0+inv0+mem0)
			}
			b.ReportMetric(ratio, "traffic_vs_hcc")
		})
	}
}

// BenchmarkFigure11 reports the remaining global WB/INV fractions of
// Addr+L relative to Addr per inter-block application.
func BenchmarkFigure11(b *testing.B) {
	for _, w := range InterWorkloads(benchScale) {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var fwb, finv float64
			for i := 0; i < b.N; i++ {
				ha := NewModeHierarchy(NewInterMachine(), ModeAddr).(*core.Hierarchy)
				if _, err := w.Run(ha, ModeAddr); err != nil {
					b.Fatal(err)
				}
				wbA, invA := ha.GlobalOps()
				hl := NewModeHierarchy(NewInterMachine(), ModeAddrL).(*core.Hierarchy)
				if _, err := w.Run(hl, ModeAddrL); err != nil {
					b.Fatal(err)
				}
				wbL, invL := hl.GlobalOps()
				fwb = ratio(float64(wbL), float64(wbA))
				finv = ratio(float64(invL), float64(invA))
			}
			b.ReportMetric(fwb, "wb_frac_vs_addr")
			b.ReportMetric(finv, "inv_frac_vs_addr")
		})
	}
}

// BenchmarkFigure12 runs every (application, mode) pair of the inter-block
// evaluation.
func BenchmarkFigure12(b *testing.B) {
	for _, w := range InterWorkloads(benchScale) {
		w := w
		base := hccBaseline(b, "inter/"+w.Name, func() (*Result, error) {
			return w.Run(NewModeHierarchy(NewInterMachine(), ModeHCC), ModeHCC)
		})
		for _, mode := range InterModes {
			mode := mode
			b.Run(w.Name+"/"+mode.String(), func(b *testing.B) {
				var r *Result
				for i := 0; i < b.N; i++ {
					var err error
					r, err = w.Run(NewModeHierarchy(NewInterMachine(), mode), mode)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.Cycles), "sim_cycles")
				b.ReportMetric(float64(r.Cycles)/float64(base), "norm_vs_hcc")
			})
		}
	}
}

// BenchmarkRunIntraBlock measures the end-to-end Figure 9/10 sweep —
// the repo's hottest path — serially and fanned out across GOMAXPROCS
// workers. The two variants produce identical results (keyed assembly);
// on an N-core runner the parallel variant should approach N× the
// serial throughput.
func BenchmarkRunIntraBlock(b *testing.B) {
	variants := []struct {
		name     string
		parallel int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := runIntraOpts(context.Background(), benchScale, RunOptions{Parallel: v.parallel})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Figure9.Groups) != 11 {
					b.Fatalf("incomplete sweep: %d groups", len(res.Figure9.Groups))
				}
			}
			b.ReportMetric(float64(v.parallel), "workers")
		})
	}
}

// csWorkload is a synthetic critical-section microbenchmark for the
// entry-buffer sweeps: each thread repeatedly enters a critical section,
// reads rdLines shared lines and writes wrLines lines of its own slice,
// so the per-epoch read and write sets are controlled exactly.
func csWorkload(threads, iters, rdLines, wrLines int) []engine.Guest {
	shared := mem.Addr(0x10000)
	priv := func(t int) mem.Addr { return mem.Addr(0x100000 + t*0x4000) }
	app := func(p *annotate.P) {
		me := p.ID()
		for k := 0; k < iters; k++ {
			p.CSEnter(1)
			for l := 0; l < rdLines; l++ {
				p.Load(shared + mem.Addr(l*mem.LineBytes))
			}
			for l := 0; l < wrLines; l++ {
				p.Store(priv(me)+mem.Addr(l*mem.LineBytes), mem.Word(k))
			}
			p.Store(shared, mem.Word(k)) // one genuinely shared write
			p.CSExit(1)
			p.Compute(200)
		}
		p.Barrier(0)
	}
	return annotate.Guests(threads, annotate.BMI, annotate.Pattern{}, app)
}

// BenchmarkAblationMEBSize sweeps the MEB capacity against a critical
// section that writes 12 lines per epoch: buffers smaller than the
// epoch's write set overflow and fall back to full tag traversals, buffers
// at or above it serve every WB ALL (the paper picked 16 entries).
func BenchmarkAblationMEBSize(b *testing.B) {
	for _, size := range []int{2, 4, 8, 16, 32, 64} {
		size := size
		b.Run(benchName("entries", size), func(b *testing.B) {
			var r *Result
			var fallbacks, served int64
			for i := 0; i < b.N; i++ {
				m := NewIntraMachine()
				l1, l2, l3 := scaledCacheConfig(m)
				h := core.New(m, core.Config{L1: l1, L2: l2, L3: l3, MEBEntries: size, IEBEntries: 4})
				var err error
				r, err = Run(h, csWorkload(16, 8, 2, 12))
				if err != nil {
					b.Fatal(err)
				}
				fallbacks = h.Counters().Get("meb.fallback")
				served = h.Counters().Get("meb.served")
			}
			b.ReportMetric(float64(r.Cycles), "sim_cycles")
			b.ReportMetric(float64(fallbacks), "meb_fallbacks")
			b.ReportMetric(float64(served), "meb_served")
		})
	}
}

// BenchmarkAblationIEBSize sweeps the IEB capacity against a critical
// section that reads 6 shared lines per epoch: buffers smaller than the
// read set evict entries and pay an unnecessary invalidation plus miss on
// every re-read (the paper picked 4 entries for its small sections).
func BenchmarkAblationIEBSize(b *testing.B) {
	for _, size := range []int{1, 2, 4, 8, 16} {
		size := size
		b.Run(benchName("entries", size), func(b *testing.B) {
			var r *Result
			var evictions int64
			for i := 0; i < b.N; i++ {
				m := NewIntraMachine()
				l1, l2, l3 := scaledCacheConfig(m)
				h := core.New(m, core.Config{L1: l1, L2: l2, L3: l3, MEBEntries: 16, IEBEntries: size})
				guests := make([]engine.Guest, 16)
				app := func(p *annotate.P) {
					for k := 0; k < 8; k++ {
						p.CSEnter(1)
						// Read the 6-line shared region twice: the second
						// pass is where a too-small IEB re-invalidates.
						for pass := 0; pass < 2; pass++ {
							for l := 0; l < 6; l++ {
								p.Load(mem.Addr(0x10000 + l*mem.LineBytes))
							}
						}
						p.Store(0x10000, mem.Word(k))
						p.CSExit(1)
						p.Compute(200)
					}
					p.Barrier(0)
				}
				guests = annotate.Guests(16, annotate.BMI, annotate.Pattern{}, app)
				var err error
				r, err = Run(h, guests)
				if err != nil {
					b.Fatal(err)
				}
				evictions = h.Counters().Get("ieb.evictions")
			}
			b.ReportMetric(float64(r.Cycles), "sim_cycles")
			b.ReportMetric(float64(evictions), "ieb_evictions")
		})
	}
}

// BenchmarkAblationDirtyGranularity measures how much writeback volume the
// per-word dirty bits save versus hypothetical per-line dirty bits (one of
// the three traffic advantages of Section VII-B): the metric is the ratio
// of words actually written back to words a full-line writeback would
// move.
func BenchmarkAblationDirtyGranularity(b *testing.B) {
	pick := map[string]bool{"fft": true, "cholesky": true, "water-nsq": true, "barnes": true}
	for _, w := range IntraWorkloads(benchScale) {
		if !pick[w.Name] {
			continue
		}
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				h := NewHierarchy(NewIntraMachine(), BMI).(*core.Hierarchy)
				if _, err := w.Run(h, BMI); err != nil {
					b.Fatal(err)
				}
				words := h.Counters().Get("wb.words")
				lines := h.Counters().Get("wb.dirtylines")
				if lines > 0 {
					frac = float64(words) / float64(lines*mem.WordsPerLine)
				}
			}
			b.ReportMetric(frac, "words_per_line_frac")
		})
	}
}

// BenchmarkExtensionHierarchicalReduction compares flat EP with the
// hierarchical-reduction rewrite under Addr+L (the paper's Section VII-C
// suggestion).
func BenchmarkExtensionHierarchicalReduction(b *testing.B) {
	variants := []struct {
		name string
		mk   func() *IRWorkload
	}{
		{"flat", func() *IRWorkload { return nas.EP(nas.Bench, 32) }},
		{"hierarchical", func() *IRWorkload { return nas.EPHier(nas.Bench, 32, 4) }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var r *Result
			var wb, inv int64
			for i := 0; i < b.N; i++ {
				h := NewModeHierarchy(NewInterMachine(), ModeAddrL).(*core.Hierarchy)
				var err error
				r, err = v.mk().Run(h, ModeAddrL)
				if err != nil {
					b.Fatal(err)
				}
				wb, inv = h.GlobalOps()
			}
			b.ReportMetric(float64(r.Cycles), "sim_cycles")
			b.ReportMetric(float64(wb), "global_wbs")
			b.ReportMetric(float64(inv), "global_invs")
		})
	}
}

// BenchmarkEngineThroughput measures raw simulator speed: simulated
// operations per second for a memory-heavy guest.
func BenchmarkEngineThroughput(b *testing.B) {
	m := topo.NewIntraBlock()
	h := core.New(m, core.DefaultConfig(m))
	const opsPerGuest = 10000
	guests := make([]engine.Guest, 16)
	for i := range guests {
		i := i
		guests[i] = func(p engine.Proc) {
			base := mem.Addr(0x100000 + i*0x10000)
			for k := 0; k < opsPerGuest; k++ {
				p.Store(base+mem.Addr(k%512*64), mem.Word(k))
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.New(h, guests).Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(16*opsPerGuest*b.N)/b.Elapsed().Seconds(), "sim_ops/s")
}

func benchName(prefix string, n int) string {
	return prefix + "-" + strconv.Itoa(n)
}

// BenchmarkExtensionWriteThrough compares the paper's write-back design
// (with MEB/IEB) against a VIPS-style write-through/self-downgrade variant
// (Section VIII's most closely related simplified-coherence scheme): under
// write-through no WB instructions are needed at all, but every store pays
// word-granular network traffic.
func BenchmarkExtensionWriteThrough(b *testing.B) {
	apps := IntraWorkloads(benchScale)
	pick := map[string]bool{"cholesky": true, "raytrace": true, "ocean-cont": true}
	for _, w := range apps {
		if !pick[w.Name] {
			continue
		}
		w := w
		for _, cfg := range []Config{BMI, annotate.WT} {
			cfg := cfg
			b.Run(w.Name+"/"+cfg.Name, func(b *testing.B) {
				var r *Result
				for i := 0; i < b.N; i++ {
					var err error
					r, err = w.Run(NewHierarchy(NewIntraMachine(), cfg), cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.Cycles), "sim_cycles")
				b.ReportMetric(float64(r.Traffic.Total()), "flits")
			})
		}
	}
}

// BenchmarkExtensionBloom compares the paper's MEB/IEB design against
// Ashby-style Bloom-signature selective self-invalidation (Section VIII):
// signatures make invalidation selective, but they ride every release,
// the acquirer still pays a full tag-match pass, and channel signatures
// saturate over time — the lock-intensive overhead the paper cites as the
// reason to prefer the MEB/IEB structures.
func BenchmarkExtensionBloom(b *testing.B) {
	pick := map[string]bool{"cholesky": true, "raytrace": true, "water-nsq": true}
	for _, w := range IntraWorkloads(benchScale) {
		if !pick[w.Name] {
			continue
		}
		w := w
		for _, cfg := range []Config{Base, BMI, annotate.BloomSig} {
			cfg := cfg
			b.Run(w.Name+"/"+cfg.Name, func(b *testing.B) {
				var r *Result
				var sat float64
				for i := 0; i < b.N; i++ {
					h := NewHierarchy(NewIntraMachine(), cfg)
					var err error
					r, err = w.Run(h, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if cfg.UseBloom {
						sat = h.(*core.Hierarchy).BloomMaxSaturation()
					}
				}
				b.ReportMetric(float64(r.Cycles), "sim_cycles")
				if cfg.UseBloom {
					b.ReportMetric(sat, "channel_saturation")
				}
			})
		}
	}
}

// BenchmarkExtensionDMA compares the paper's level-adaptive shared-memory
// communication against Runnemede's DMA-based inter-block communication
// (Section VIII) on a halo-exchange microbenchmark: each of 32 threads
// produces a 4-line chunk per iteration that its successor (one hop right,
// crossing a block every eighth thread) consumes.
func BenchmarkExtensionDMA(b *testing.B) {
	const (
		threads = 32
		lines   = 4
		iters   = 8
		chunkB  = lines * mem.LineBytes
	)
	base := mem.Addr(0x100000)
	haloBase := mem.Addr(0x400000) // DMA deposit area, per consumer
	chunk := func(t int) mem.Range { return mem.RangeOf(base+mem.Addr(t*chunkB), chunkB) }
	halo := func(t int) mem.Range { return mem.RangeOf(haloBase+mem.Addr(t*chunkB), chunkB) }

	variants := []struct {
		name   string
		guests func(m *Machine) []engine.Guest
	}{
		{"adaptive", func(m *Machine) []engine.Guest {
			gs := make([]engine.Guest, threads)
			for i := range gs {
				i := i
				succ, pred := (i+1)%threads, (i+threads-1)%threads
				gs[i] = func(p engine.Proc) {
					for it := 0; it < iters; it++ {
						for w := 0; w < lines*mem.WordsPerLine; w++ {
							p.Store(chunk(i).Base+mem.Addr(w*4), mem.Word(it*1000+w))
						}
						p.WBCons(chunk(i), succ)
						p.Barrier(0)
						p.InvProd(chunk(pred), pred)
						for w := 0; w < lines*mem.WordsPerLine; w++ {
							p.Load(chunk(pred).Base + mem.Addr(w*4))
						}
						p.Barrier(0)
					}
				}
			}
			return gs
		}},
		{"dma", func(m *Machine) []engine.Guest {
			gs := make([]engine.Guest, threads)
			for i := range gs {
				i := i
				succ := (i + 1) % threads
				succBlock := m.BlockOf(succ)
				gs[i] = func(p engine.Proc) {
					for it := 0; it < iters; it++ {
						for w := 0; w < lines*mem.WordsPerLine; w++ {
							p.Store(chunk(i).Base+mem.Addr(w*4), mem.Word(it*1000+w))
						}
						// Push the chunk globally and DMA it into the
						// consumer's halo area in its block's L2.
						p.WBGlobal(chunk(i))
						p.DMACopy(halo(succ).Base, chunk(i), succBlock)
						p.Barrier(0)
						p.INV(halo(i)) // L1-only: the DMA refreshed the L2
						for w := 0; w < lines*mem.WordsPerLine; w++ {
							p.Load(halo(i).Base + mem.Addr(w*4))
						}
						p.Barrier(0)
					}
				}
			}
			return gs
		}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var r *Result
			for i := 0; i < b.N; i++ {
				m := NewInterMachine()
				h := NewModeHierarchy(m, ModeAddrL)
				var err error
				r, err = Run(h, v.guests(m))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Cycles), "sim_cycles")
			b.ReportMetric(float64(r.Traffic.Total()), "flits")
		})
	}
}

// BenchmarkExtensionBlockScaling measures how the level-adaptive benefit
// depends on cluster count: with more, smaller clusters a smaller fraction
// of Jacobi's neighbor exchanges stays intra-block, so more of Addr's
// global operations survive under Addr+L. The full sweep runs powers of
// two up to 128 blocks (1024 cores) on the block-parallel engine; -short
// keeps the original small machines.
func BenchmarkExtensionBlockScaling(b *testing.B) {
	blockCounts := []int{2, 4, 8, 16, 32, 64, 128}
	if testing.Short() {
		blockCounts = []int{2, 4, 8}
	}
	for _, blocks := range blockCounts {
		blocks := blocks
		b.Run(benchName("blocks", blocks), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				run := func(mode Mode) (int64, int64) {
					m := topo.NewCustom(blocks, 8, 4, topo.DefaultParams())
					m.Params.TraversalPerFrame = 4
					l1, l2, l3 := scaledCacheConfig(m)
					h := core.New(m, core.Config{L1: l1, L2: l2, L3: l3})
					h.SetBlockParallel(true)
					w := jacobi.New(jacobi.Bench, m.NumCores())
					if _, err := w.Run(h, compilerMode(mode)); err != nil {
						b.Fatal(err)
					}
					return h.GlobalOps()
				}
				wbA, invA := run(ModeAddr)
				wbL, invL := run(ModeAddrL)
				frac = ratio(float64(wbL+invL), float64(wbA+invA))
			}
			b.ReportMetric(frac, "global_frac_vs_addr")
		})
	}
}

// BenchmarkManycoreScaling is the wall-clock companion to the E7
// block-scaling experiment: one Jacobi cell per machine size, serial vs
// block-parallel engine, up to 128 blocks × 8 cores. The reported
// sim_cycles per size must be identical across the two engines; ns/op is
// the simulator-speed curve that feeds BENCH_manycore.json.
func BenchmarkManycoreScaling(b *testing.B) {
	blockCounts := ManycoreBlockCounts(128)
	if testing.Short() {
		blockCounts = ManycoreBlockCounts(8)
	}
	for _, eng := range []struct {
		name string
		par  bool
	}{{"serial", false}, {"block-parallel", true}} {
		eng := eng
		b.Run(eng.name, func(b *testing.B) {
			for _, blocks := range blockCounts {
				blocks := blocks
				b.Run(benchName("blocks", blocks), func(b *testing.B) {
					var r *Result
					for i := 0; i < b.N; i++ {
						m := NewManycoreMachine(blocks, DefaultManycoreCoresPerBlock)
						l1, l2, l3 := scaledCacheConfig(m)
						h := core.New(m, core.Config{L1: l1, L2: l2, L3: l3})
						h.SetBlockParallel(eng.par)
						w := jacobi.New(jacobi.Bench, m.NumCores())
						var err error
						r, err = w.Run(h, compilerMode(ModeAddrL))
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(r.Cycles), "sim_cycles")
				})
			}
		})
	}
}

// compilerMode converts the re-exported Mode back for direct IRWorkload
// use (identity; kept for readability at the call site).
func compilerMode(m Mode) Mode { return m }
