package hic

// Determinism regression tests: the orchestrator's contract is that the
// hic-results/v1 document is a pure function of (suite, scale, options)
// — worker count, scheduling order, and host speed must never leak into
// it. The basic serial-vs-parallel equality lives in
// orchestrator_test.go; these tests pin the harder dimensions that ride
// on top: a seeded fault plan (whose @rand indices must resolve from
// the plan seed, not a per-worker stream) and the coherence oracle
// (whose violation strings become cell errors and thus document bytes).

import (
	"bytes"
	"context"
	"testing"
)

func TestSeededFaultSweepIsDeterministicAcrossWorkerCounts(t *testing.T) {
	opts := func(workers int) RunOptions {
		return RunOptions{
			Parallel:       workers,
			CheckCoherence: true,
			Faults:         "drop-wb@rand; skip-inv@rand; seed=7",
		}
	}
	// Injected faults make cells fail with detected coherence violations;
	// that is the experiment working, so the sweep error is expected and
	// only the documents are compared.
	serial, _ := runIntraOpts(context.Background(), ScaleTest, opts(1))
	parallel, _ := runIntraOpts(context.Background(), ScaleTest, opts(8))
	sj := encodeDoc(t, serial.Document(ScaleTest))
	pj := encodeDoc(t, parallel.Document(ScaleTest))
	if !bytes.Equal(sj, pj) {
		t.Errorf("seeded fault sweep differs between 1 and 8 workers:\nserial:\n%s\nparallel:\n%s", sj, pj)
	}

	var detected int
	for _, r := range serial.Runs {
		if r.Error != "" {
			detected++
			if r.ErrorKind != "coherence" {
				t.Errorf("%s/%s failed with kind %q, want coherence: %s", r.Workload, r.Config, r.ErrorKind, r.Error)
			}
		}
	}
	if detected == 0 {
		t.Error("seeded fault plan injected nothing the oracle detected; the test is vacuous")
	}
}

func TestSeededFaultSweepIsRepeatable(t *testing.T) {
	opts := RunOptions{
		Parallel:       8,
		CheckCoherence: true,
		Faults:         "delay-wb@rand; seed=21",
	}
	a, _ := runIntraOpts(context.Background(), ScaleTest, opts)
	b, _ := runIntraOpts(context.Background(), ScaleTest, opts)
	if !bytes.Equal(encodeDoc(t, a.Document(ScaleTest)), encodeDoc(t, b.Document(ScaleTest))) {
		t.Error("two identical seeded sweeps emitted different documents")
	}
}

func TestOracleSweepIsDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the inter sweep twice")
	}
	serial, err := runInterOpts(context.Background(), ScaleTest, RunOptions{Parallel: 1, CheckCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runInterOpts(context.Background(), ScaleTest, RunOptions{Parallel: 8, CheckCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeDoc(t, serial.Document(ScaleTest)), encodeDoc(t, parallel.Document(ScaleTest))) {
		t.Error("oracle-checked inter-block sweep differs between 1 and 8 workers")
	}
}
