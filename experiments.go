package hic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps/jacobi"
	"repro/internal/apps/nas"
	"repro/internal/apps/splash"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/stats"
)

// Scale selects the experiment problem sizes.
type Scale int

const (
	// ScaleTest runs quickly (unit tests, smoke checks).
	ScaleTest Scale = iota
	// ScaleBench is the scale the benchmark harness reports.
	ScaleBench
)

func splashSize(s Scale) splash.Size {
	if s == ScaleBench {
		return splash.Bench
	}
	return splash.Test
}

func nasSize(s Scale) nas.Size {
	if s == ScaleBench {
		return nas.Bench
	}
	return nas.Test
}

// IntraWorkloads returns the eleven SPLASH-2 application variants of the
// intra-block evaluation at the given scale, on 16 threads (Table III).
func IntraWorkloads(s Scale) []*Workload { return splash.All(splashSize(s), 16) }

// InterWorkloads returns the four Model 2 applications of the inter-block
// evaluation at the given scale, on 32 threads (Table III).
func InterWorkloads(s Scale) []*IRWorkload {
	sz := nasSize(s)
	jsz := jacobi.Test
	if s == ScaleBench {
		jsz = jacobi.Bench
	}
	return []*IRWorkload{
		nas.EP(sz, 32),
		nas.IS(sz, 32),
		nas.CG(sz, 32),
		jacobi.New(jsz, 32),
	}
}

// IntraResult is the outcome of the intra-block experiments (E3 + E4).
type IntraResult struct {
	// Figure9 is the normalized execution time with the paper's stall
	// breakdown (INV, WB, lock, barrier, rest), bars HCC/Base/B+M/B+I/
	// B+M+I per application, normalized to HCC.
	Figure9 *Figure
	// Figure10 is the normalized network traffic of HCC vs B+M+I with
	// the paper's class breakdown (linefill, writeback, invalidation,
	// memory), normalized to HCC.
	Figure10 *Figure
	// Raw holds every run's engine result, keyed by app then config.
	Raw map[string]map[string]*Result
}

// RunIntraBlock executes every intra-block application under every Table
// II configuration and builds Figures 9 and 10.
func RunIntraBlock(s Scale) (*IntraResult, error) {
	res := &IntraResult{
		Figure9:  &Figure{Title: "Figure 9: normalized execution time (intra-block)", Categories: []string{"inv", "wb", "lock", "barrier", "rest"}},
		Figure10: &Figure{Title: "Figure 10: normalized traffic, HCC vs B+M+I (flits)", Categories: []string{"linefill", "writeback", "invalidation", "memory"}},
		Raw:      make(map[string]map[string]*Result),
	}
	for _, w := range IntraWorkloads(s) {
		res.Raw[w.Name] = make(map[string]*Result)
		var hccCycles float64
		var hccTraffic stats.Traffic
		g9 := stats.Group{Name: w.Name}
		g10 := stats.Group{Name: w.Name}
		for _, cfg := range IntraConfigs {
			h := NewHierarchy(NewIntraMachine(), cfg)
			r, err := w.Run(h, cfg)
			if err != nil {
				return nil, err
			}
			res.Raw[w.Name][cfg.Name] = r
			if cfg.Name == HCC.Name {
				hccCycles = float64(r.Cycles)
				hccTraffic = r.Traffic
			}
			// The paper's per-category stall heights are aggregated over
			// threads, scaled so the bar's total equals the parallel
			// execution time ratio.
			inv, wb, lock, barrier, rest := r.Stalls.Figure9()
			tot := float64(inv + wb + lock + barrier + rest)
			scale := float64(r.Cycles) / hccCycles / tot
			g9.Bars = append(g9.Bars, stats.Bar{
				Label: cfg.Name,
				Segments: []float64{
					float64(inv) * scale, float64(wb) * scale, float64(lock) * scale,
					float64(barrier) * scale, float64(rest) * scale,
				},
			})
			if cfg.Name == HCC.Name || cfg.Name == BMI.Name {
				lf, wbt, invt, memt := r.Traffic.Figure10()
				lf0, wb0, inv0, mem0 := hccTraffic.Figure10()
				norm := float64(lf0 + wb0 + inv0 + mem0)
				g10.Bars = append(g10.Bars, stats.Bar{
					Label: cfg.Name,
					Segments: []float64{
						float64(lf) / norm, float64(wbt) / norm,
						float64(invt) / norm, float64(memt) / norm,
					},
				})
			}
		}
		res.Figure9.Groups = append(res.Figure9.Groups, g9)
		res.Figure10.Groups = append(res.Figure10.Groups, g10)
	}
	return res, nil
}

// InterResult is the outcome of the inter-block experiments (E5 + E6).
type InterResult struct {
	// Figure11 compares global WB and INV line-operation counts of Addr
	// vs Addr+L, normalized to Addr (categories: global WB, global INV).
	Figure11 *Figure
	// Figure12 is the normalized execution time (bars HCC/Base/Addr/
	// Addr+L, normalized to HCC).
	Figure12 *Figure
	// Raw holds every run's engine result, keyed by app then mode.
	Raw map[string]map[string]*Result
}

// RunInterBlock executes every inter-block application under every Table
// II mode and builds Figures 11 and 12.
func RunInterBlock(s Scale) (*InterResult, error) {
	res := &InterResult{
		Figure11: &Figure{Title: "Figure 11: normalized global WB and INV counts", Categories: []string{"global-wb", "global-inv"}},
		Figure12: &Figure{Title: "Figure 12: normalized execution time (inter-block)", Categories: []string{"cycles"}},
		Raw:      make(map[string]map[string]*Result),
	}
	for _, w := range InterWorkloads(s) {
		res.Raw[w.Name] = make(map[string]*Result)
		var hccCycles float64
		var addrWB, addrINV float64
		g11 := stats.Group{Name: w.Name}
		g12 := stats.Group{Name: w.Name}
		for _, mode := range InterModes {
			h := NewModeHierarchy(NewInterMachine(), mode)
			r, err := w.Run(h, mode)
			if err != nil {
				return nil, err
			}
			res.Raw[w.Name][mode.String()] = r
			if mode == ModeHCC {
				hccCycles = float64(r.Cycles)
			}
			g12.Bars = append(g12.Bars, stats.Bar{
				Label:    mode.String(),
				Segments: []float64{float64(r.Cycles) / hccCycles},
			})
			if mode == ModeAddr || mode == ModeAddrL {
				wb, inv := h.(*core.Hierarchy).GlobalOps()
				if mode == ModeAddr {
					addrWB, addrINV = float64(wb), float64(inv)
				}
				g11.Bars = append(g11.Bars, stats.Bar{
					Label: mode.String(),
					Segments: []float64{
						ratio(float64(wb), addrWB),
						ratio(float64(inv), addrINV),
					},
				})
			}
		}
		res.Figure11.Groups = append(res.Figure11.Groups, g11)
		res.Figure12.Groups = append(res.Figure12.Groups, g12)
	}
	return res, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return 0
	}
	return a / b
}

// PatternTable regenerates Table I: the communication-pattern
// classification of the intra-block applications, from the workloads' own
// declarations cross-checked against the synchronization operations they
// actually execute.
func PatternTable(s Scale) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: communication patterns (intra-block applications)\n")
	fmt.Fprintf(&b, "%-14s %-28s %-28s %s\n", "app", "main", "other", "measured sync ops")
	for _, w := range IntraWorkloads(s) {
		h := NewHierarchy(NewIntraMachine(), Base)
		r, err := w.Run(h, Base)
		if err != nil {
			return "", err
		}
		census := SyncCensus(r)
		fmt.Fprintf(&b, "%-14s %-28s %-28s %s\n",
			w.Name, strings.Join(w.Main, ", "), strings.Join(w.Other, ", "), census)
	}
	return b.String(), nil
}

// SyncCensus summarizes the synchronization operations of a run.
func SyncCensus(r *Result) string {
	type entry struct {
		name  string
		count int64
	}
	entries := []entry{
		{"barrier", r.Ops[isa.OpBarrier]},
		{"flag", r.Ops[isa.OpFlagSet] + r.Ops[isa.OpFlagWait]},
		{"lock", r.Ops[isa.OpAcquire]},
	}
	parts := make([]string, 0, len(entries))
	for _, e := range entries {
		parts = append(parts, fmt.Sprintf("%s=%d", e.name, e.count))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// VerifyAll runs every workload at test scale under every configuration
// and mode, returning the first failure (a full self-check of the
// reproduction).
func VerifyAll() error {
	for _, w := range IntraWorkloads(ScaleTest) {
		for _, cfg := range IntraConfigs {
			if _, err := w.Run(NewHierarchy(NewIntraMachine(), cfg), cfg); err != nil {
				return err
			}
		}
	}
	for _, w := range InterWorkloads(ScaleTest) {
		for _, mode := range InterModes {
			if _, err := w.Run(NewModeHierarchy(NewInterMachine(), mode), mode); err != nil {
				return err
			}
		}
	}
	return nil
}
