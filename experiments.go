package hic

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/apps/jacobi"
	"repro/internal/apps/nas"
	"repro/internal/apps/splash"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/envelope"
	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Scale selects the experiment problem sizes.
type Scale int

const (
	// ScaleTest runs quickly (unit tests, smoke checks).
	ScaleTest Scale = iota
	// ScaleBench is the scale the benchmark harness reports.
	ScaleBench
)

// Name returns the scale's flag spelling ("test", "bench").
func (s Scale) Name() string {
	if s == ScaleBench {
		return "bench"
	}
	return "test"
}

func splashSize(s Scale) splash.Size {
	if s == ScaleBench {
		return splash.Bench
	}
	return splash.Test
}

func nasSize(s Scale) nas.Size {
	if s == ScaleBench {
		return nas.Bench
	}
	return nas.Test
}

// IntraWorkloads returns the eleven SPLASH-2 application variants of the
// intra-block evaluation at the given scale, on 16 threads (Table III).
func IntraWorkloads(s Scale) []*Workload { return splash.All(splashSize(s), 16) }

// InterWorkloads returns the four Model 2 applications of the inter-block
// evaluation at the given scale, on 32 threads (Table III).
func InterWorkloads(s Scale) []*IRWorkload {
	sz := nasSize(s)
	jsz := jacobi.Test
	if s == ScaleBench {
		jsz = jacobi.Bench
	}
	return []*IRWorkload{
		nas.EP(sz, 32),
		nas.IS(sz, 32),
		nas.CG(sz, 32),
		jacobi.New(jsz, 32),
	}
}

// RunOptions controls a sweep: orchestration (worker count, per-run
// timeout, transient-failure retries) plus the robustness checks
// (coherence oracle, fault injection). The zero value runs with
// GOMAXPROCS workers, no timeout, and no checks.
type RunOptions struct {
	// Parallel is the worker count; values <= 0 mean GOMAXPROCS.
	Parallel int
	// Timeout bounds each individual run; 0 means none. See
	// runner.Options.
	Timeout time.Duration
	// Retries and RetryBackoff rerun cells whose failure is transient
	// (timeouts). See runner.Options.
	Retries      int
	RetryBackoff time.Duration
	// CheckCoherence attaches the shadow-memory coherence oracle
	// (internal/oracle) to every run: each load is checked against the
	// happens-before-legal value set, and a violation fails the cell
	// with a coherence error.
	CheckCoherence bool
	// Faults is a deterministic fault plan in the internal/faultinject
	// grammar ("drop-wb@0; meb-cap=1; seed=7"), injected into every
	// incoherent-hierarchy run; HCC runs have no WB/INV to sabotage and
	// are skipped. A non-empty plan implies the oracle, so injected
	// faults are detected and attributed.
	Faults string
	// Metrics attaches an observability recorder (internal/obs) to every
	// run and embeds its deterministic snapshot in the cell's RunRecord:
	// cache hit/miss/eviction counters, MEB/IEB events and occupancy
	// high-water marks, NoC latency histograms, and per-kind stall-cycle
	// totals that reconcile exactly with the result's Stalls breakdown.
	Metrics bool
	// Trace additionally retains the bounded per-core stall-span timeline
	// and occupancy sample tracks for Chrome trace_event export (implies
	// the same recorder as Metrics; snapshots are embedded only when
	// Metrics is also set).
	Trace bool
	// Observer, when non-nil, is called with each cell's recorder after
	// its run completes (successfully or not), before snapshots are
	// taken for the outcome. Setting it alone also enables recording.
	Observer func(workload, config string, rec *obs.Recorder)
	// Only, when non-empty, restricts a sweep to the named workloads
	// (unknown names are ignored). Figures are built from the cells that
	// ran; absent applications simply contribute no groups. The -short
	// regression paths use this to avoid re-simulating full sweeps.
	Only []string
	// BlockParallel runs incoherent-hierarchy cells under the engine's
	// block-parallel executor (one goroutine per block between
	// deterministic sync epochs). Results are byte-identical to serial
	// execution; cells with fault injection or a recorder attached
	// degrade to the serial engine on their own.
	BlockParallel bool
	// Cache, when non-nil, is a content-addressed result cache: before a
	// cell simulates, its runner.CellKey hash is looked up, and a hit
	// returns the stored outcome with zero engine steps. Determinism
	// makes hits exact — the key covers everything that can change the
	// outcome (workload, config, topology, scale, fault plan, seed, the
	// result-affecting options, and the code version), and orchestration
	// options are excluded. Traced sweeps bypass the cache, and the
	// Observer callback does not fire for cells served from it.
	Cache runner.Cache
	// Seed salts the cache key. Current workloads are deterministic and
	// ignore it; it exists so stochastic workloads can join the
	// content-addressing scheme, and so callers can force distinct
	// addresses for otherwise-identical sweeps.
	Seed int64
}

// cacheOptions is the result-affecting option subset that participates
// in the cache key. Parallel/Timeout/Retries are excluded — they cannot
// change a deterministic cell's bytes. "recording" is distinct from
// "metrics" because merely attaching a recorder (an Observer without
// Metrics) changes block-parallel degradation, and therefore the
// record's degraded_to_serial field, without embedding a snapshot.
func (o RunOptions) cacheOptions() map[string]string {
	m := map[string]string{}
	if o.CheckCoherence {
		m["coherence"] = "1"
	}
	if o.Metrics {
		m["metrics"] = "1"
	}
	if o.BlockParallel {
		m["block_parallel"] = "1"
	}
	if o.recording() {
		m["recording"] = "1"
	}
	return m
}

// cellKey builds the content address of one cell under these options.
func (o RunOptions) cellKey(s Scale, topology, workload, config string) runner.CellKey {
	return runner.CellKey{
		Workload: workload, Config: config,
		Topology: topology, Scale: s.Name(),
		Faults: o.Faults, Seed: o.Seed,
		Options:     o.cacheOptions(),
		CodeVersion: runner.CodeVersion(),
	}
}

// withCache wraps a task body with cache consultation: a hit returns
// the stored outcome without building a hierarchy or stepping the
// engine; a miss runs the body and stores a successful outcome. Traced
// sweeps bypass the cache (timelines are a large local debugging
// affordance), and failures always re-execute.
func (o RunOptions) withCache(s Scale, topology string, t runner.Task) runner.Task {
	if o.Cache == nil || o.Trace {
		return t
	}
	key := o.cellKey(s, topology, t.Workload, t.Config).Hash()
	body := t.Run
	t.Run = func(ctx context.Context) (*runner.Outcome, error) {
		if out, ok := o.Cache.Get(key); ok {
			return out, nil
		}
		out, err := body(ctx)
		if err == nil && out != nil {
			o.Cache.Put(key, out)
		}
		return out, err
	}
	return t
}

// engage applies the block-parallel option to a freshly built hierarchy
// (a no-op for hierarchies that do not support sharding, i.e. MESI).
func (o RunOptions) engage(h engine.Hierarchy) {
	if !o.BlockParallel {
		return
	}
	if ch, ok := h.(*core.Hierarchy); ok {
		ch.SetBlockParallel(true)
	}
}

// degradeReason reports why this cell's requested block-parallel
// execution will nevertheless run serially: the hierarchy's own degrade
// causes first (fault plans and recorders are global state), then an
// attached oracle (the engine refuses to shard observed runs — the
// observer consumes a serialized event stream). Empty when sharding
// engages, when block parallelism was not requested, or when the
// hierarchy cannot shard at all (MESI, single-block machines).
func (o RunOptions) degradeReason(h engine.Hierarchy, orc *oracle.Oracle) string {
	if !o.BlockParallel {
		return ""
	}
	ch, ok := h.(*core.Hierarchy)
	if !ok {
		return ""
	}
	if r := ch.DegradeReason(); r != "" {
		return r
	}
	if orc != nil && ch.ParallelShards() > 1 {
		return "observer"
	}
	return ""
}

// wants reports whether workload name is selected by the Only filter.
func (o RunOptions) wants(name string) bool {
	if len(o.Only) == 0 {
		return true
	}
	for _, n := range o.Only {
		if n == name {
			return true
		}
	}
	return false
}

// Workers returns the effective worker count for n tasks.
func (o RunOptions) Workers(n int) int { return o.runner().Workers(n) }

// runner converts the orchestration subset to runner.Options.
func (o RunOptions) runner() runner.Options {
	return runner.Options{
		Parallel: o.Parallel, Timeout: o.Timeout,
		Retries: o.Retries, RetryBackoff: o.RetryBackoff,
	}
}

// checks builds the per-run fault state and oracle for a hierarchy,
// per the options. Either may be nil.
func (o RunOptions) checks(h engine.Hierarchy, threads int) (*oracle.Oracle, *faultinject.State, error) {
	var st *faultinject.State
	if o.Faults != "" {
		plan, err := faultinject.Parse(o.Faults)
		if err != nil {
			return nil, nil, err
		}
		if ch, ok := h.(*core.Hierarchy); ok && !plan.Empty() {
			st = faultinject.NewState(plan)
			ch.SetFaults(st)
		}
	}
	if !o.CheckCoherence && st == nil {
		return nil, nil, nil
	}
	orc := oracle.New(threads)
	orc.SetFaults(st)
	return orc, st, nil
}

// recording reports whether the options ask for any observability.
func (o RunOptions) recording() bool {
	return o.Metrics || o.Trace || o.Observer != nil
}

// instrument builds the cell's recorder per the options and attaches it
// to the hierarchy's components; nil when observability is off.
// Metrics-only cells keep exact totals and high-water marks but store
// no timelines (negative caps); tracing buys the bounded rings.
func (o RunOptions) instrument(h engine.Hierarchy) *obs.Recorder {
	if !o.recording() {
		return nil
	}
	cfg := obs.Config{SpanCap: -1, TrackCap: -1}
	if o.Trace {
		cfg = obs.Config{}
	}
	rec := obs.New(cfg)
	obs.Attach(h, rec)
	return rec
}

// finish fires the Observer callback and captures the cell's snapshot
// and timeline into the outcome (nil out on a failed run: the callback
// still sees the recorder, the outcome captures nothing).
func (o RunOptions) finish(workload, config string, rec *obs.Recorder, out *runner.Outcome) {
	if rec == nil {
		return
	}
	if o.Observer != nil {
		o.Observer(workload, config, rec)
	}
	if out == nil {
		return
	}
	if o.Metrics {
		out.Metrics = rec.Snapshot()
	}
	if o.Trace {
		out.Trace = rec.TraceData()
	}
}

// cellTraces gathers the retained timelines of a traced sweep in task
// order, labeled for Chrome export.
func cellTraces(grid *runner.Grid) []obs.CellTrace {
	var traces []obs.CellTrace
	for _, c := range grid.Cells() {
		if c.Outcome != nil && c.Outcome.Trace != nil {
			traces = append(traces, obs.CellTrace{Workload: c.Workload, Config: c.Config, Trace: c.Outcome.Trace})
		}
	}
	return traces
}

// DefaultRunOptions fans runs out across GOMAXPROCS workers with no
// per-run timeout. Results are identical to a serial sweep: every run is
// independent and assembly is keyed, not order-dependent.
func DefaultRunOptions() RunOptions {
	return RunOptions{Parallel: runtime.GOMAXPROCS(0)}
}

// IntraResult is the outcome of the intra-block experiments (E3 + E4).
type IntraResult struct {
	// Figure9 is the normalized execution time with the paper's stall
	// breakdown (INV, WB, lock, barrier, rest), bars HCC/Base/B+M/B+I/
	// B+M+I per application, normalized to HCC.
	Figure9 *Figure
	// Figure10 is the normalized network traffic of HCC vs B+M+I with
	// the paper's class breakdown (linefill, writeback, invalidation,
	// memory), normalized to HCC.
	Figure10 *Figure
	// Raw holds every successful run's engine result, keyed by app then
	// config.
	Raw map[string]map[string]*Result
	// Runs holds one record per run in sweep order (errors included).
	Runs []runner.RunRecord
	// Traces holds each cell's retained stall timeline in sweep order
	// when the sweep ran with RunOptions.Trace (empty otherwise); feed
	// them to obs.WriteChrome.
	Traces []obs.CellTrace
}

// intraTasks builds one task per (application, configuration) pair. Each
// task constructs its own workload instance, hierarchy, and (when opts
// asks for them) fault state and oracle, so tasks are fully independent
// and safe to run concurrently.
func intraTasks(s Scale, opts RunOptions) []runner.Task {
	var tasks []runner.Task
	for i, w := range IntraWorkloads(s) {
		if !opts.wants(w.Name) {
			continue
		}
		for _, cfg := range IntraConfigs {
			i, cfg := i, cfg
			tasks = append(tasks, opts.withCache(s, "intra", runner.Task{
				Workload: w.Name,
				Config:   cfg.Name,
				Run: func(ctx context.Context) (*runner.Outcome, error) {
					wl := IntraWorkloads(s)[i]
					h := NewHierarchy(NewIntraMachine(), cfg)
					opts.engage(h)
					rec := opts.instrument(h)
					orc, _, err := opts.checks(h, wl.Threads)
					if err != nil {
						return nil, err
					}
					r, err := wl.RunObserved(ctx, h, cfg, orc, rec)
					if err != nil {
						opts.finish(wl.Name, cfg.Name, rec, nil)
						return nil, err
					}
					out := &runner.Outcome{Result: r, Degraded: opts.degradeReason(h, orc)}
					opts.finish(wl.Name, cfg.Name, rec, out)
					return out, nil
				},
			}))
		}
	}
	return tasks
}

// RunIntraBlock executes every intra-block application under every Table
// II configuration and builds Figures 9 and 10, fanning the runs out
// under DefaultRunOptions.
func RunIntraBlock(s Scale) (*IntraResult, error) {
	return runIntraOpts(context.Background(), s, DefaultRunOptions())
}

// runIntraOpts is the struct-options form behind RunIntra and
// RunIntraBlock. On failure it returns the joined per-cell errors
// together with the partial result: applications whose HCC baseline
// succeeded still get their figure groups, and Runs records every cell
// including the failed ones.
func runIntraOpts(ctx context.Context, s Scale, opts RunOptions) (*IntraResult, error) {
	grid := runner.Run(ctx, intraTasks(s, opts), opts.runner())
	res := &IntraResult{
		Figure9:  &Figure{Title: "Figure 9: normalized execution time (intra-block)", Categories: []string{"inv", "wb", "lock", "barrier", "rest"}},
		Figure10: &Figure{Title: "Figure 10: normalized traffic, HCC vs B+M+I (flits)", Categories: []string{"linefill", "writeback", "invalidation", "memory"}},
		Raw:      make(map[string]map[string]*Result),
		Runs:     grid.Records(),
		Traces:   cellTraces(grid),
	}
	for _, w := range IntraWorkloads(s) {
		res.Raw[w.Name] = make(map[string]*Result)
		for _, cfg := range IntraConfigs {
			if r := grid.Result(w.Name, cfg.Name); r != nil {
				res.Raw[w.Name][cfg.Name] = r
			}
		}
		// Normalization reads the HCC baseline by key, so the figures do
		// not depend on IntraConfigs order (or on which run finished
		// first under parallel execution).
		hcc := grid.Result(w.Name, HCC.Name)
		if hcc == nil {
			continue // baseline failed; reported via Runs and Err
		}
		hccCycles := float64(hcc.Cycles)
		g9 := stats.Group{Name: w.Name}
		g10 := stats.Group{Name: w.Name}
		for _, cfg := range IntraConfigs {
			r := grid.Result(w.Name, cfg.Name)
			if r == nil {
				continue
			}
			// The paper's per-category stall heights are aggregated over
			// threads, scaled so the bar's total equals the parallel
			// execution time ratio.
			inv, wb, lock, barrier, rest := r.Stalls.Figure9()
			tot := float64(inv + wb + lock + barrier + rest)
			var scale float64
			if tot > 0 {
				scale = ratio(float64(r.Cycles), hccCycles) / tot
			}
			g9.Bars = append(g9.Bars, stats.Bar{
				Label: cfg.Name,
				Segments: []float64{
					float64(inv) * scale, float64(wb) * scale, float64(lock) * scale,
					float64(barrier) * scale, float64(rest) * scale,
				},
			})
			if cfg.Name == HCC.Name || cfg.Name == BMI.Name {
				lf, wbt, invt, memt := r.Traffic.Figure10()
				lf0, wb0, inv0, mem0 := hcc.Traffic.Figure10()
				norm := float64(lf0 + wb0 + inv0 + mem0)
				g10.Bars = append(g10.Bars, stats.Bar{
					Label: cfg.Name,
					Segments: []float64{
						ratio(float64(lf), norm), ratio(float64(wbt), norm),
						ratio(float64(invt), norm), ratio(float64(memt), norm),
					},
				})
			}
		}
		res.Figure9.Groups = append(res.Figure9.Groups, g9)
		res.Figure10.Groups = append(res.Figure10.Groups, g10)
	}
	return res, grid.Err()
}

// Document serializes the result for the shape checker and external
// tooling.
func (r *IntraResult) Document(s Scale) *runner.Document {
	return &runner.Document{
		Schema: envelope.SchemaV2,
		Kind:   envelope.KindResults,
		Scale:  s.Name(),
		Suite:  "intra",
		Figures: []runner.Figure{
			runner.FigureJSON("figure9", r.Figure9),
			runner.FigureJSON("figure10", r.Figure10),
		},
		Runs: r.Runs,
	}
}

// InterResult is the outcome of the inter-block experiments (E5 + E6).
type InterResult struct {
	// Figure11 compares global WB and INV line-operation counts of Addr
	// vs Addr+L, normalized to Addr (categories: global WB, global INV).
	Figure11 *Figure
	// Figure12 is the normalized execution time (bars HCC/Base/Addr/
	// Addr+L, normalized to HCC).
	Figure12 *Figure
	// Raw holds every successful run's engine result, keyed by app then
	// mode.
	Raw map[string]map[string]*Result
	// Runs holds one record per run in sweep order (errors included).
	Runs []runner.RunRecord
	// Traces holds each cell's retained stall timeline in sweep order
	// when the sweep ran with RunOptions.Trace (empty otherwise); feed
	// them to obs.WriteChrome.
	Traces []obs.CellTrace
}

// interTasks builds one task per (application, mode) pair; global WB/INV
// line-operation counts are captured into the outcome for the modes
// Figure 11 compares.
func interTasks(s Scale, opts RunOptions) []runner.Task {
	var tasks []runner.Task
	for i, w := range InterWorkloads(s) {
		if !opts.wants(w.Name) {
			continue
		}
		for _, mode := range InterModes {
			i, mode := i, mode
			tasks = append(tasks, opts.withCache(s, "inter", runner.Task{
				Workload: w.Name,
				Config:   mode.String(),
				Run: func(ctx context.Context) (*runner.Outcome, error) {
					wl := InterWorkloads(s)[i]
					h := NewModeHierarchy(NewInterMachine(), mode)
					opts.engage(h)
					rec := opts.instrument(h)
					orc, _, err := opts.checks(h, wl.Threads)
					if err != nil {
						return nil, err
					}
					r, err := wl.RunObserved(ctx, h, mode, orc, rec)
					if err != nil {
						opts.finish(wl.Name, mode.String(), rec, nil)
						return nil, err
					}
					out := &runner.Outcome{Result: r, Degraded: opts.degradeReason(h, orc)}
					if hi, ok := h.(*core.Hierarchy); ok {
						out.GlobalWB, out.GlobalINV = hi.GlobalOps()
					}
					opts.finish(wl.Name, mode.String(), rec, out)
					return out, nil
				},
			}))
		}
	}
	return tasks
}

// RunInterBlock executes every inter-block application under every Table
// II mode and builds Figures 11 and 12, fanning the runs out under
// DefaultRunOptions.
func RunInterBlock(s Scale) (*InterResult, error) {
	return runInterOpts(context.Background(), s, DefaultRunOptions())
}

// runInterOpts is the struct-options form behind RunInter and
// RunInterBlock; error semantics match runIntraOpts.
func runInterOpts(ctx context.Context, s Scale, opts RunOptions) (*InterResult, error) {
	grid := runner.Run(ctx, interTasks(s, opts), opts.runner())
	res := &InterResult{
		Figure11: &Figure{Title: "Figure 11: normalized global WB and INV counts", Categories: []string{"global-wb", "global-inv"}},
		Figure12: &Figure{Title: "Figure 12: normalized execution time (inter-block)", Categories: []string{"cycles"}},
		Raw:      make(map[string]map[string]*Result),
		Runs:     grid.Records(),
		Traces:   cellTraces(grid),
	}
	for _, w := range InterWorkloads(s) {
		res.Raw[w.Name] = make(map[string]*Result)
		for _, mode := range InterModes {
			if r := grid.Result(w.Name, mode.String()); r != nil {
				res.Raw[w.Name][mode.String()] = r
			}
		}
		// Figure 12 normalizes to the HCC baseline by key; Figure 11
		// normalizes Addr+L's global operations to Addr's by key. Neither
		// depends on InterModes order.
		hcc := grid.Result(w.Name, ModeHCC.String())
		if hcc == nil {
			continue
		}
		hccCycles := float64(hcc.Cycles)
		g12 := stats.Group{Name: w.Name}
		for _, mode := range InterModes {
			if r := grid.Result(w.Name, mode.String()); r != nil {
				g12.Bars = append(g12.Bars, stats.Bar{
					Label:    mode.String(),
					Segments: []float64{ratio(float64(r.Cycles), hccCycles)},
				})
			}
		}
		res.Figure12.Groups = append(res.Figure12.Groups, g12)
		addr := grid.Get(w.Name, ModeAddr.String())
		if addr == nil || addr.Outcome == nil {
			continue
		}
		g11 := stats.Group{Name: w.Name}
		for _, mode := range []Mode{ModeAddr, ModeAddrL} {
			c := grid.Get(w.Name, mode.String())
			if c == nil || c.Outcome == nil {
				continue
			}
			g11.Bars = append(g11.Bars, stats.Bar{
				Label: mode.String(),
				Segments: []float64{
					ratio(float64(c.Outcome.GlobalWB), float64(addr.Outcome.GlobalWB)),
					ratio(float64(c.Outcome.GlobalINV), float64(addr.Outcome.GlobalINV)),
				},
			})
		}
		res.Figure11.Groups = append(res.Figure11.Groups, g11)
	}
	return res, grid.Err()
}

// Document serializes the result for the shape checker and external
// tooling.
func (r *InterResult) Document(s Scale) *runner.Document {
	return &runner.Document{
		Schema: envelope.SchemaV2,
		Kind:   envelope.KindResults,
		Scale:  s.Name(),
		Suite:  "inter",
		Figures: []runner.Figure{
			runner.FigureJSON("figure11", r.Figure11),
			runner.FigureJSON("figure12", r.Figure12),
		},
		Runs: r.Runs,
	}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return 0
	}
	return a / b
}

// PatternTable regenerates Table I: the communication-pattern
// classification of the intra-block applications, from the workloads' own
// declarations cross-checked against the synchronization operations they
// actually execute. The per-application Base runs execute under
// DefaultRunOptions.
func PatternTable(s Scale) (string, error) {
	ws := IntraWorkloads(s)
	var tasks []runner.Task
	for i, w := range ws {
		i := i
		tasks = append(tasks, runner.Task{
			Workload: w.Name,
			Config:   Base.Name,
			Run: func(context.Context) (*runner.Outcome, error) {
				r, err := IntraWorkloads(s)[i].Run(NewHierarchy(NewIntraMachine(), Base), Base)
				if err != nil {
					return nil, err
				}
				return &runner.Outcome{Result: r}, nil
			},
		})
	}
	grid := runner.Run(context.Background(), tasks, DefaultRunOptions().runner())
	if err := grid.Err(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: communication patterns (intra-block applications)\n")
	fmt.Fprintf(&b, "%-14s %-28s %-28s %s\n", "app", "main", "other", "measured sync ops")
	for _, w := range ws {
		census := SyncCensus(grid.Result(w.Name, Base.Name))
		fmt.Fprintf(&b, "%-14s %-28s %-28s %s\n",
			w.Name, strings.Join(w.Main, ", "), strings.Join(w.Other, ", "), census)
	}
	return b.String(), nil
}

// SyncCensus summarizes the synchronization operations of a run.
func SyncCensus(r *Result) string {
	type entry struct {
		name  string
		count int64
	}
	entries := []entry{
		{"barrier", r.Ops[isa.OpBarrier]},
		{"flag", r.Ops[isa.OpFlagSet] + r.Ops[isa.OpFlagWait]},
		{"lock", r.Ops[isa.OpAcquire]},
	}
	parts := make([]string, 0, len(entries))
	for _, e := range entries {
		parts = append(parts, fmt.Sprintf("%s=%d", e.name, e.count))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// VerifyAll runs every workload at test scale under every configuration
// and mode with the coherence oracle attached, returning the labeled
// failures (a full self-check of the reproduction).
func VerifyAll() error {
	opts := DefaultRunOptions()
	opts.CheckCoherence = true
	tasks := append(intraTasks(ScaleTest, opts), interTasks(ScaleTest, opts)...)
	return runner.Run(context.Background(), tasks, opts.runner()).Err()
}
