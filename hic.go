// Package hic (hardware-incoherent caches) is the public API of this
// reproduction of "Architecting and Programming a Hardware-Incoherent
// Multiprocessor Cache Hierarchy" (Kim, Tavarageri, Sadayappan, Torrellas;
// IPDPS 2016).
//
// The package ties together the internal subsystems:
//
//   - internal/core — the paper's contribution: the hardware-incoherent
//     hierarchy with WB/INV instruction flavors, the MEB and IEB entry
//     buffers, and level-adaptive WB_CONS/INV_PROD;
//   - internal/mesi — the hardware-coherent (HCC) directory-MESI baseline;
//   - internal/engine — the deterministic execution-driven simulator;
//   - internal/annotate — Programming Model 1 (sync-point annotation);
//   - internal/compiler — Programming Model 2 (IR analysis + lowering);
//   - internal/msg — the shared-buffer MPI layer;
//   - workloads under internal/apps.
//
// It exposes machine factories, the experiment runners that regenerate the
// paper's Table I, Section VII-A storage comparison, and Figures 9-12, and
// re-exports the types applications program against.
package hic

import (
	"repro/internal/annotate"
	"repro/internal/cache"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mesi"
	"repro/internal/overhead"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Re-exported types: the surface applications and tools program against.
type (
	// Proc is the processor interface guest threads program against.
	Proc = engine.Proc
	// Guest is one guest thread's program.
	Guest = engine.Guest
	// Result is a run's timing and traffic outcome.
	Result = engine.Result
	// Hierarchy is the memory-system interface the engine drives.
	Hierarchy = engine.Hierarchy
	// Config is a Table II intra-block configuration.
	Config = annotate.Config
	// Pattern is the Table I sharing declaration for Model 1 programs.
	Pattern = annotate.Pattern
	// AnnotatedProc is the Model 1 annotated processor view.
	AnnotatedProc = annotate.P
	// App is a Model 1 application body.
	App = annotate.App
	// Mode is a Table II inter-block configuration.
	Mode = compiler.Mode
	// Workload is a self-verifying Model 1 benchmark application.
	Workload = workload.Workload
	// IRWorkload is a self-verifying Model 2 benchmark application.
	IRWorkload = compiler.IRWorkload
	// Machine is the physical machine layout.
	Machine = topo.Machine
	// Figure is a printable normalized stacked-bar reproduction of one of
	// the paper's figures.
	Figure = stats.Figure
)

// The Table II intra-block configurations.
var (
	HCC  = annotate.HCC
	Base = annotate.Base
	BM   = annotate.BM
	BI   = annotate.BI
	BMI  = annotate.BMI
	// IntraConfigs lists them in Figure 9's bar order.
	IntraConfigs = annotate.IntraConfigs
)

// The Table II inter-block configurations.
const (
	ModeHCC   = compiler.ModeHCC
	ModeBase  = compiler.ModeBase
	ModeAddr  = compiler.ModeAddr
	ModeAddrL = compiler.ModeAddrL
)

// InterModes lists them in Figure 12's bar order.
var InterModes = compiler.Modes

// NewIntraMachine returns the Table III single-block machine (16 cores),
// with the whole-cache traversal cost calibrated to the full-scale tag
// array (see scaledCacheConfig).
func NewIntraMachine() *Machine {
	m := topo.NewIntraBlock()
	m.Params.TraversalPerFrame = 4
	return m
}

// NewInterMachine returns the Table III four-block machine (4×8 cores),
// calibrated like NewIntraMachine.
func NewInterMachine() *Machine {
	m := topo.NewInterBlock()
	m.Params.TraversalPerFrame = 4
	return m
}

// Experiment cache scaling. The workloads are scaled down from the
// paper's inputs so cycle-level simulation stays fast; following the
// SPLASH-2 methodology, the experiment caches scale with them (working
// sets must exceed the L1 for the relative cost of whole-cache WB/INV to
// match the full-scale machine). Table III geometry — associativity,
// banking, latencies, MEB/IEB sizes — is unchanged; only capacities
// shrink. Use the core/mesi DefaultConfig for full Table III capacities.
const (
	scaledL1Bytes   = 4 << 10   // per core (Table III: 32 KB)
	scaledL2PerCore = 16 << 10  // per L2 bank (Table III: 128 KB)
	scaledL3PerBank = 256 << 10 // per L3 bank (Table III: 4 MB)
)

func scaledCacheConfig(m *Machine) (l1, l2, l3 cache.Config) {
	l1 = cache.Config{Bytes: scaledL1Bytes, Ways: 4}
	l2 = cache.Config{Bytes: scaledL2PerCore * m.CoresPerBlock, Ways: 8}
	if m.L3Banks > 0 {
		l3 = cache.Config{Bytes: scaledL3PerBank * m.L3Banks, Ways: 8}
	}
	return l1, l2, l3
}

// NewHierarchy builds the memory hierarchy for an intra-block
// configuration on machine m: the MESI baseline for HCC, otherwise the
// incoherent hierarchy with the configuration's entry buffers. Capacities
// follow the scaled experiment configuration (see scaledCacheConfig).
func NewHierarchy(m *Machine, cfg Config) Hierarchy {
	l1, l2, l3 := scaledCacheConfig(m)
	if cfg.HCC {
		return mesi.New(m, mesi.Config{L1: l1, L2: l2, L3: l3})
	}
	c := core.Config{L1: l1, L2: l2, L3: l3, WriteThrough: cfg.WriteThrough}
	if cfg.UseBloom {
		c.BloomBits = 256
		c.BloomHashes = 2
	}
	if cfg.UseMEB {
		c.MEBEntries = 16
	}
	if cfg.UseIEB {
		c.IEBEntries = 4
	}
	return core.New(m, c)
}

// NewModeHierarchy builds the hierarchy for an inter-block mode on machine
// m. The Model 2 configurations do not use the entry buffers.
func NewModeHierarchy(m *Machine, mode Mode) Hierarchy {
	l1, l2, l3 := scaledCacheConfig(m)
	if mode == ModeHCC {
		return mesi.New(m, mesi.Config{L1: l1, L2: l2, L3: l3})
	}
	return core.New(m, core.Config{L1: l1, L2: l2, L3: l3})
}

// StorageReport regenerates the Section VII-A control/storage comparison.
func StorageReport() *overhead.Report {
	return overhead.Compute(overhead.PaperMachine())
}

// WrapAnnotated builds the Programming Model 1 annotated view of p for a
// thread running under cfg with the sharing knowledge pat.
func WrapAnnotated(p Proc, cfg Config, pat Pattern) *AnnotatedProc {
	return annotate.Wrap(p, cfg, pat)
}

// AnnotatedGuests lowers a Model 1 application to engine guests for n
// threads under cfg and pat.
func AnnotatedGuests(n int, cfg Config, pat Pattern, app App) []Guest {
	return annotate.Guests(n, cfg, pat, app)
}

// LowerIR compiles a Model 2 IR program for n threads under mode,
// returning one guest per thread (analysis, inspector generation, and
// WB_CONS/INV_PROD placement included).
func LowerIR(prog *compiler.Program, n int, mode Mode) []Guest {
	return compiler.Lower(prog, n, mode)
}
