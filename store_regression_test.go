package hic

// Regression gate for the paged backing store: the whole-simulator output
// must not depend on which mem.Memory implementation backs the hierarchy.
// The intra-block sweep runs once on the paged store and once on the
// retained map-based oracle store, and the canonical hic-results/v1
// documents must be byte-identical. Any divergence — a footprint
// miscount, a word read back differently, a latency perturbed by store
// behavior — fails here with the first differing byte in view.

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/mem"
)

func TestPagedAndOracleStoresEmitIdenticalJSON(t *testing.T) {
	// Under -short, cover a representative subset instead of simulating
	// the full sweep twice: a barrier-heavy app, a lock-heavy one, and a
	// producer/consumer one still exercise every store-visible path
	// (line fills, writebacks, footprint accounting) at a fraction of
	// the wall clock.
	opts := RunOptions{Parallel: 4}
	if testing.Short() {
		ws := IntraWorkloads(ScaleTest)
		for _, w := range ws[:3] {
			opts.Only = append(opts.Only, w.Name)
		}
	}
	run := func(oracle bool) []byte {
		mem.UseOracleStore(oracle)
		defer mem.UseOracleStore(false)
		res, err := runIntraOpts(context.Background(), ScaleTest, opts)
		if err != nil {
			t.Fatal(err)
		}
		return encodeDoc(t, res.Document(ScaleTest))
	}
	paged := run(false)
	oracle := run(true)
	if !bytes.Equal(paged, oracle) {
		i := 0
		for i < len(paged) && i < len(oracle) && paged[i] == oracle[i] {
			i++
		}
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		clip := func(b []byte) string {
			if hi > len(b) {
				return string(b[lo:])
			}
			return string(b[lo:hi])
		}
		t.Errorf("paged and oracle store JSON diverge at byte %d:\npaged:  …%s…\noracle: …%s…",
			i, clip(paged), clip(oracle))
	}
}
