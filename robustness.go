// The buggy-annotation robustness experiment: deliberately sabotage the
// annotation discipline of every intra-block application with one
// deterministic fault per run and check that the coherence oracle
// detects and attributes the resulting violation. This is the
// falsifiability test for the whole reproduction — the paper's claim is
// that the annotations in Table I are *sufficient* for correctness, so a
// harness that cannot see a missing WB or INV could not support that
// claim. See DESIGN.md ("Robustness") and EXPERIMENTS.md.

package hic

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/oracle"
	"repro/internal/runner"
)

// calibrate runs each application clean under every configuration a
// calibrated fault class targets, returning the results keyed
// "workload/config". The census of WB/INV-family instructions in these
// runs is what the calibrated plans index into.
func calibrate(ctx context.Context, s Scale, classes []FaultClass, opts RunOptions) (map[string]*Result, error) {
	need := map[string]Config{}
	for _, c := range classes {
		if c.Calibrate != nil {
			need[c.Config.Name] = c.Config
		}
	}
	out := map[string]*Result{}
	if len(need) == 0 {
		return out, nil
	}
	var tasks []runner.Task
	for i, w := range IntraWorkloads(s) {
		for _, cfg := range need {
			i, cfg := i, cfg
			tasks = append(tasks, runner.Task{
				Workload: w.Name,
				Config:   cfg.Name,
				Run: func(ctx context.Context) (*runner.Outcome, error) {
					wl := IntraWorkloads(s)[i]
					r, err := wl.RunChecked(ctx, NewHierarchy(NewIntraMachine(), cfg), cfg, nil)
					if err != nil {
						return nil, err
					}
					return &runner.Outcome{Result: r}, nil
				},
			})
		}
	}
	grid := runner.Run(ctx, tasks, opts.runner())
	if err := grid.Err(); err != nil {
		return nil, fmt.Errorf("buggy-annotation calibration: %w", err)
	}
	for _, w := range IntraWorkloads(s) {
		for name := range need {
			out[w.Name+"/"+name] = grid.Result(w.Name, name)
		}
	}
	return out, nil
}

// FaultClasses are the canonical injected-bug classes of the
// buggy-annotation experiment, with the configuration each needs: the
// MEB and IEB classes only bite under the configurations whose
// annotations use those buffers. A class with Calibrate set gets its
// injection indices from a clean calibration run (see spreadIndices);
// the others carry a fixed plan.
var FaultClasses = []FaultClass{
	{Class: "drop-wb", Directive: "drop-wb", Calibrate: wbFamily, Config: Base},
	{Class: "delay-wb", Directive: "delay-wb", Calibrate: wbFamily, Config: Base},
	{Class: "skip-inv", Directive: "skip-inv", Calibrate: invFamily, Config: Base},
	{Class: "meb-cap", Plan: "meb-cap=1", Config: BM},
	{Class: "ieb-lie", Plan: iebLiePlan(), Config: BI},
}

// FaultClass describes one injected-bug class of the experiment.
type FaultClass struct {
	// Class labels the bug ("drop-wb", ...); it doubles as the grid's
	// config key.
	Class string
	// Plan is a fixed fault plan; empty when the class is calibrated.
	Plan string
	// Directive and Calibrate build the plan from a calibration run:
	// Calibrate counts the targeted instruction family in the clean
	// run's op census, and the plan injects Directive at a spread of
	// indices across that count (single faults at index 0 are almost
	// always masked — the apps' annotation discipline republishes or
	// re-invalidates the same lines a moment later).
	Directive string
	Calibrate func(r *Result) int64
	// Config is the Table II configuration the bug is injected under.
	Config Config
}

func wbFamily(r *Result) int64 {
	return r.Ops[isa.OpWB] + r.Ops[isa.OpWBAll] + r.Ops[isa.OpWBCons] + r.Ops[isa.OpWBConsAll]
}

func invFamily(r *Result) int64 {
	return r.Ops[isa.OpINV] + r.Ops[isa.OpINVAll] + r.Ops[isa.OpInvProd] + r.Ops[isa.OpInvProdAll]
}

// faultSpread is how many injection points a calibrated plan scatters
// across its instruction family.
const faultSpread = 8

// spreadIndices picks k injection points spread across the interior of
// [0, n): endpoints are avoided because a fault on the very first or
// very last instruction of a family tends to be masked (republished by
// the next whole-cache operation, or never read before the drain).
func spreadIndices(n int64, k int) []uint64 {
	if n <= 0 {
		return []uint64{0}
	}
	seen := make(map[uint64]bool)
	var out []uint64
	for i := 1; i <= k; i++ {
		idx := uint64(n) * uint64(i) / uint64(k+1)
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}

// iebLiePlan lies at a ladder of lazy-invalidation decision indices: the
// decision count is load-driven and unknowable in advance, and most
// armed lookups cover lines whose data never changed (a harmless lie),
// so the plan scatters widely.
func iebLiePlan() string {
	var parts []string
	for _, i := range []int{0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987} {
		parts = append(parts, fmt.Sprintf("ieb-lie@%d", i))
	}
	return strings.Join(parts, "; ")
}

// FaultMatrixEntry is one cell of the injected-fault ⇒ detected-violation
// matrix.
type FaultMatrixEntry struct {
	Workload string `json:"workload"`
	Class    string `json:"class"`
	// Plan is the canonical form of the injected plan.
	Plan   string `json:"plan"`
	Config string `json:"config"`
	// Injected counts the faults the run actually injected (0 means the
	// plan's index was never reached).
	Injected int64 `json:"injected"`
	// Violations counts the coherence violations the oracle observed.
	Violations int `json:"violations"`
	// Detected reports whether the run failed with a coherence error;
	// Kind is the runner error taxonomy label of whatever error the run
	// produced ("" when it passed — the fault was masked).
	Detected bool   `json:"detected"`
	Kind     string `json:"kind,omitempty"`
	Error    string `json:"error,omitempty"`
}

// FaultReport is the outcome of the buggy-annotation experiment.
type FaultReport struct {
	Scale   string
	Entries []FaultMatrixEntry
}

// Detection summarizes the matrix: injected cells, detected cells.
func (r *FaultReport) Detection() (injected, detected int) {
	for _, e := range r.Entries {
		if e.Injected > 0 {
			injected++
		}
		if e.Detected {
			detected++
		}
	}
	return injected, detected
}

// Undetected returns the entries whose injected fault produced no
// coherence error (masked faults).
func (r *FaultReport) Undetected() []FaultMatrixEntry {
	var out []FaultMatrixEntry
	for _, e := range r.Entries {
		if e.Injected > 0 && !e.Detected {
			out = append(out, e)
		}
	}
	return out
}

// Render formats the matrix as a text table.
func (r *FaultReport) Render() string {
	var b strings.Builder
	injected, detected := r.Detection()
	fmt.Fprintf(&b, "Buggy-annotation robustness matrix (scale %s): %d/%d injected faults detected\n",
		r.Scale, detected, injected)
	fmt.Fprintf(&b, "%-14s %-9s %-22s %-6s %8s %10s  %-8s %s\n",
		"app", "fault", "plan", "config", "injected", "violations", "detected", "error kind")
	for _, e := range r.Entries {
		mark := "no"
		if e.Detected {
			mark = "yes"
		}
		plan := e.Plan
		if n := strings.Count(plan, ";"); n > 0 && len(plan) > 22 {
			plan = fmt.Sprintf("%s +%d more", plan[:strings.Index(plan, ";")], n)
		}
		fmt.Fprintf(&b, "%-14s %-9s %-22s %-6s %8d %10d  %-8s %s\n",
			e.Workload, e.Class, plan, e.Config, e.Injected, e.Violations, mark, e.Kind)
	}
	return b.String()
}

// RunBuggyAnnotation injects each fault class into every intra-block
// application (one fault per run, oracle always attached) and reports the
// detection matrix. A WithFaultPlan option replaces the canonical
// per-class plans with that single plan, run under Base. The returned
// error covers harness failures only — detected coherence violations are
// the experiment's successful outcome and land in the report, not the
// error.
func RunBuggyAnnotation(ctx context.Context, s Scale, options ...Option) (*FaultReport, error) {
	opts := NewRunOptions(options...)
	classes := FaultClasses
	if opts.Faults != "" {
		classes = []FaultClass{{Class: "custom", Plan: opts.Faults, Config: Base}}
	}

	// Calibration pass: one clean run per (application, configuration)
	// a calibrated class needs, to census the instruction family its
	// plan indexes into.
	census, err := calibrate(ctx, s, classes, opts)
	if err != nil {
		return nil, err
	}

	type row struct {
		wi    int
		class string
		plan  faultinject.Plan
		cfg   Config
	}
	var rows []row
	rep := &FaultReport{Scale: s.Name()}
	for wi, w := range IntraWorkloads(s) {
		for _, c := range classes {
			spec := c.Plan
			if c.Calibrate != nil {
				var parts []string
				for _, idx := range spreadIndices(c.Calibrate(census[w.Name+"/"+c.Config.Name]), faultSpread) {
					parts = append(parts, fmt.Sprintf("%s@%d", c.Directive, idx))
				}
				spec = strings.Join(parts, "; ")
			}
			plan, err := faultinject.Parse(spec)
			if err != nil {
				return nil, fmt.Errorf("fault class %s: %w", c.Class, err)
			}
			rows = append(rows, row{wi: wi, class: c.Class, plan: plan, cfg: c.Config})
			rep.Entries = append(rep.Entries, FaultMatrixEntry{
				Workload: w.Name, Class: c.Class,
				Plan: plan.String(), Config: c.Config.Name,
			})
		}
	}

	var tasks []runner.Task
	for i := range rows {
		i := i
		r := rows[i]
		tasks = append(tasks, runner.Task{
			Workload: rep.Entries[i].Workload,
			Config:   r.class,
			Run: func(ctx context.Context) (*runner.Outcome, error) {
				wl := IntraWorkloads(s)[r.wi]
				h := NewHierarchy(NewIntraMachine(), r.cfg)
				ch, ok := h.(*core.Hierarchy)
				if !ok {
					return nil, fmt.Errorf("fault class %s: %s is not an incoherent hierarchy", r.class, r.cfg.Name)
				}
				st := faultinject.NewState(r.plan)
				ch.SetFaults(st)
				orc := oracle.New(wl.Threads)
				orc.SetFaults(st)
				res, err := wl.RunChecked(ctx, h, r.cfg, orc)
				// Each task owns exactly one entry, so concurrent tasks
				// never write the same slot; the runner's completion
				// barrier publishes the writes before assembly below.
				ent := &rep.Entries[i]
				ent.Injected = st.Injected()
				ent.Violations = orc.Total()
				if err != nil {
					return nil, err
				}
				return &runner.Outcome{Result: res}, nil
			},
		})
	}

	grid := runner.Run(ctx, tasks, opts.runner())
	var harness []string
	for i := range rows {
		ent := &rep.Entries[i]
		cell := grid.Get(ent.Workload, rows[i].class)
		if cell == nil || cell.Err == nil {
			continue
		}
		ent.Error = cell.Err.Error()
		ent.Kind = runner.ErrorKind(cell.Err)
		switch ent.Kind {
		case "coherence":
			ent.Detected = true
		case "error":
			// Verification failure without an oracle report: the fault
			// corrupted the answer but no checked read saw it happen.
			// Counted as undetected — the matrix is about the oracle.
		default:
			// Panics, timeouts, livelocks are harness failures, not
			// experiment outcomes.
			harness = append(harness, fmt.Sprintf("%s/%s: %s", ent.Workload, ent.Class, ent.Kind))
		}
	}
	if len(harness) > 0 {
		return rep, fmt.Errorf("buggy-annotation harness failures: %s", strings.Join(harness, "; "))
	}
	return rep, nil
}
