package hic

// End-to-end tests of the observability layer: the metrics snapshots
// embedded in sweep documents must be deterministic (worker count and
// scheduling order must never leak into them), the retained stall
// timelines must reconcile *exactly* with the engine's stall
// accounting, and the Chrome export of a real sweep must be well-formed
// trace_event JSON. Unit coverage of the recorder itself lives in
// internal/obs; these tests pin the integration contract.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

func TestMetricsSnapshotsDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *IntraResult {
		res, err := RunIntra(context.Background(), ScaleTest,
			WithParallel(workers), WithMetrics())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	sj := encodeDoc(t, serial.Document(ScaleTest))
	pj := encodeDoc(t, parallel.Document(ScaleTest))
	if !bytes.Equal(sj, pj) {
		t.Error("metrics-bearing sweep document differs between 1 and 8 workers")
	}
	for _, r := range serial.Runs {
		if r.Metrics == nil {
			t.Fatalf("%s/%s: no metrics snapshot", r.Workload, r.Config)
		}
		if r.Metrics.Schema != obs.MetricsSchema {
			t.Errorf("%s/%s: metrics schema %q, want %q", r.Workload, r.Config, r.Metrics.Schema, obs.MetricsSchema)
		}
		if r.Metrics.Counters["cache.l1.hits"] == 0 {
			t.Errorf("%s/%s: snapshot has no L1 hits", r.Workload, r.Config)
		}
		// The snapshot's stall totals must agree with the run record's
		// engine-side breakdown kind for kind (both derive from the same
		// paired accounting sites).
		for kind, cycles := range r.Stalls {
			if got := r.Metrics.StallCycles[kind]; got != cycles {
				t.Errorf("%s/%s: snapshot %s = %d cycles, engine counted %d",
					r.Workload, r.Config, kind, got, cycles)
			}
		}
		if len(r.Metrics.StallCycles) != len(r.Stalls) {
			t.Errorf("%s/%s: snapshot has %d stall kinds, engine %d",
				r.Workload, r.Config, len(r.Metrics.StallCycles), len(r.Stalls))
		}
	}
}

func TestTraceReconcilesWithEngineStalls(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full intra sweep with tracing")
	}
	res, err := RunIntra(context.Background(), ScaleTest, WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) == 0 {
		t.Fatal("traced sweep retained no timelines")
	}
	for _, ct := range res.Traces {
		r := res.Raw[ct.Workload][ct.Config]
		if r == nil {
			t.Fatalf("%s/%s: trace without raw result", ct.Workload, ct.Config)
		}
		// Exact reconciliation: span totals stay exact even when the
		// bounded rings drop timeline entries, so the per-kind sums must
		// equal the engine's aggregate stall breakdown to the cycle.
		if got := ct.Trace.StallTotals(); got != r.Stalls {
			t.Errorf("%s/%s: trace stall totals %v != engine stalls %v",
				ct.Workload, ct.Config, got, r.Stalls)
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, res.Traces); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Dur int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("chrome export of a real sweep is not valid JSON: %v", err)
	}
	var spans int
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			spans++
			if ev.Dur <= 0 {
				t.Fatal("complete event with non-positive duration")
			}
		}
	}
	if spans == 0 {
		t.Error("chrome export of a real sweep contains no stall spans")
	}
}

func TestRunWithObserver(t *testing.T) {
	// Dogfood the variadic Run API: a single run with an observer
	// callback is the programmatic access path to the recorder.
	wl := IntraWorkloads(ScaleTest)[0]
	h := NewHierarchy(NewIntraMachine(), BMI)
	var snap *MetricsSnapshot
	res, err := Run(h, wl.Guests(BMI), WithObserver(func(workload, config string, rec *Recorder) {
		snap = rec.Snapshot()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("observer callback never ran")
	}
	if snap.Counters["cache.l1.hits"] == 0 {
		t.Error("observed run recorded no L1 hits")
	}
	var total int64
	for _, v := range snap.StallCycles {
		total += v
	}
	if total != res.Stalls.Total() {
		t.Errorf("observed stall cycles %d != engine total %d", total, res.Stalls.Total())
	}
}

// TestUninstrumentedSweepCarriesNoMetrics pins the default: without
// WithMetrics/WithTracing the records and traces stay empty, so the
// pre-observability document bytes are unchanged.
func TestUninstrumentedSweepCarriesNoMetrics(t *testing.T) {
	res, err := RunInter(context.Background(), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 0 {
		t.Errorf("uninstrumented sweep retained %d traces", len(res.Traces))
	}
	for _, r := range res.Runs {
		if r.Metrics != nil {
			t.Errorf("%s/%s: uninstrumented run carries a metrics snapshot", r.Workload, r.Config)
		}
	}
}
