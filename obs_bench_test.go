package hic

// BenchmarkObsOverhead pins the observability layer's cost contract on a
// real workload:
//
//	off     — no recorder attached: the instrumented hot paths execute
//	          only their pointer-is-nil tests. This variant must track
//	          the pre-instrumentation baseline (the CI overhead-guard
//	          job fails a PR that slows BenchmarkRunIntraBlock by more
//	          than 2%, and this bench localizes such a regression).
//	metrics — recorder with totals/high-water marks only (the -metrics
//	          configuration): hook cost without timeline storage.
//	trace   — full bounded timelines (the -trace-chrome configuration).

import (
	"testing"
)

func BenchmarkObsOverhead(b *testing.B) {
	wl := IntraWorkloads(ScaleTest)[0]
	variants := []struct {
		name string
		opts []Option
	}{
		{"off", nil},
		{"metrics", []Option{WithObserver(func(_, _ string, rec *Recorder) {
			if rec.Snapshot() == nil {
				b.Fatal("nil snapshot from enabled recorder")
			}
		})}},
		{"trace", []Option{WithTracing(), WithObserver(func(_, _ string, rec *Recorder) {
			if rec.TraceData() == nil {
				b.Fatal("nil trace from enabled recorder")
			}
		})}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := NewHierarchy(NewIntraMachine(), BMI)
				if _, err := Run(h, wl.Guests(BMI), v.opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
