package hic

// Sweep-level cache behavior: the content address must be invariant
// under orchestration choices (worker count, timeouts, option spelling
// order) and sensitive to everything that can change a cell's bytes,
// and a cache-backed rerun must serve every cell from the cache while
// producing a document byte-identical to an uncached sweep.

import (
	"bytes"
	"context"
	"testing"
	"time"
)

func intraKeyHash(o RunOptions) string {
	return o.cellKey(ScaleTest, "intra", "fft", "B+M+I").Hash()
}

func TestCacheKeyIgnoresOrchestration(t *testing.T) {
	ref := intraKeyHash(NewRunOptions(WithMetrics(), WithCoherenceCheck()))
	same := map[string]RunOptions{
		"serial":         NewRunOptions(WithMetrics(), WithCoherenceCheck(), WithParallel(1)),
		"eight workers":  NewRunOptions(WithMetrics(), WithCoherenceCheck(), WithParallel(8)),
		"timeout":        NewRunOptions(WithMetrics(), WithCoherenceCheck(), WithTimeout(time.Minute)),
		"retries":        NewRunOptions(WithMetrics(), WithCoherenceCheck(), WithRetry(3, time.Millisecond)),
		"reversed order": NewRunOptions(WithCoherenceCheck(), WithMetrics()),
		"only filter":    NewRunOptions(WithMetrics(), WithCoherenceCheck(), WithOnly("fft")),
	}
	for name, o := range same {
		if got := intraKeyHash(o); got != ref {
			t.Errorf("%s: orchestration perturbed the cell key (%s vs %s)", name, got, ref)
		}
	}
	diff := map[string]RunOptions{
		"fault plan":     NewRunOptions(WithMetrics(), WithCoherenceCheck(), WithFaultPlan("drop-wb@3")),
		"seed":           NewRunOptions(WithMetrics(), WithCoherenceCheck(), WithSeed(7)),
		"block parallel": NewRunOptions(WithMetrics(), WithCoherenceCheck(), WithBlockParallel()),
		"no metrics":     NewRunOptions(WithCoherenceCheck()),
	}
	for name, o := range diff {
		if got := intraKeyHash(o); got == ref {
			t.Errorf("%s: result-affecting option did not move the cell key", name)
		}
	}
}

// TestObserverAloneMovesCellKey: attaching an Observer without Metrics
// still attaches a recorder, which changes block-parallel degradation
// (degraded_to_serial), so it must have its own address.
func TestObserverAloneMovesCellKey(t *testing.T) {
	plain := intraKeyHash(NewRunOptions())
	observed := intraKeyHash(NewRunOptions(WithObserver(func(string, string, *Recorder) {})))
	if plain == observed {
		t.Error("Observer-only options share the plain cell key")
	}
	withMetrics := intraKeyHash(NewRunOptions(WithMetrics()))
	if observed == withMetrics {
		t.Error("Observer-only and Metrics options share a cell key (snapshots differ)")
	}
}

func encodeIntra(t *testing.T, r *IntraResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Document(ScaleTest).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCachedSweepIsByteExactWithZeroMisses runs the same restricted
// intra sweep three times: uncached (the reference), cold through a
// cache (populates it), and warm through the same cache. The warm run
// must hit on every cell — zero engine work — and all three documents
// must be byte-identical.
func TestCachedSweepIsByteExactWithZeroMisses(t *testing.T) {
	ctx := context.Background()
	only := WithOnly("fft")
	ref, err := RunIntra(ctx, ScaleTest, only)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeIntra(t, ref)

	c := NewMemCache()
	cold, err := RunIntra(ctx, ScaleTest, only, WithCache(c))
	if err != nil {
		t.Fatal(err)
	}
	cells := int64(len(cold.Runs))
	if c.Hits() != 0 || c.Misses() != cells || int64(c.Len()) != cells {
		t.Fatalf("cold run: hits=%d misses=%d len=%d, want 0/%d/%d",
			c.Hits(), c.Misses(), c.Len(), cells, cells)
	}
	if got := encodeIntra(t, cold); !bytes.Equal(got, want) {
		t.Error("cold cached sweep differs from uncached reference")
	}

	warm, err := RunIntra(ctx, ScaleTest, only, WithCache(c), WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Hits() != cells || c.Misses() != cells {
		t.Fatalf("warm run: hits=%d misses=%d, want %d/%d (every cell served from cache)",
			c.Hits(), c.Misses(), cells, cells)
	}
	if got := encodeIntra(t, warm); !bytes.Equal(got, want) {
		t.Error("warm cached sweep differs from uncached reference")
	}
}

// TestCacheSeparatesSweeps: inter cells must never collide with intra
// cells, and a fault-injected sweep must not be served clean bytes.
func TestCacheSeparatesSweeps(t *testing.T) {
	ctx := context.Background()
	c := NewMemCache()
	if _, err := RunInter(ctx, ScaleTest, WithOnly("ep"), WithCache(c)); err != nil {
		t.Fatal(err)
	}
	after := c.Len()
	if after == 0 {
		t.Fatal("inter sweep cached nothing")
	}
	if _, err := RunIntra(ctx, ScaleTest, WithOnly("fft"), WithCache(c)); err != nil {
		t.Fatal(err)
	}
	if c.Hits() != 0 {
		t.Errorf("intra sweep hit %d inter entries", c.Hits())
	}
}
