package hic_test

import (
	"fmt"

	hic "repro"
	"repro/internal/mem"
)

// The minimal incoherent-hierarchy program: a producer exports a value
// with WB, the threads synchronize through the controller, and the
// consumer self-invalidates before reading (Section III-A's sequence).
func Example() {
	h := hic.NewHierarchy(hic.NewIntraMachine(), hic.Base)
	var got mem.Word
	guests := make([]hic.Guest, 16)
	guests[0] = func(p hic.Proc) {
		p.Store(0x1000, 42)
		p.WB(mem.WordRange(0x1000, 1))
		p.FlagSet(0, 1)
	}
	guests[1] = func(p hic.Proc) {
		p.FlagWait(0, 1)
		p.INV(mem.WordRange(0x1000, 1))
		got = p.Load(0x1000)
	}
	for i := 2; i < 16; i++ {
		guests[i] = func(hic.Proc) {}
	}
	if _, err := hic.Run(h, guests); err != nil {
		panic(err)
	}
	fmt.Println(got)
	// Output: 42
}

// Programming Model 1: the annotator inserts the WB/INV instructions that
// each Table II configuration requires, so the application is written
// once against ordinary synchronization.
func ExampleWrapAnnotated() {
	app := func(p *hic.AnnotatedProc) {
		p.CSEnter(1)
		v := p.Load(0x2000)
		p.Store(0x2000, v+1)
		p.CSExit(1)
		p.BarrierSync(0)
	}
	h := hic.NewHierarchy(hic.NewIntraMachine(), hic.BMI)
	guests := hic.AnnotatedGuests(16, hic.BMI, hic.Pattern{}, app)
	if _, err := hic.Run(h, guests); err != nil {
		panic(err)
	}
	h.Drain()
	fmt.Println(h.Memory().ReadWord(0x2000))
	// Output: 16
}

// The Section VII-A storage comparison reproduces the paper's ~102 KB
// saving.
func ExampleStorageReport() {
	r := hic.StorageReport()
	fmt.Printf("%.0f KB saved\n", r.Savings().KB())
	// Output: 101 KB saved
}
