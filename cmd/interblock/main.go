// Command interblock regenerates the paper's inter-block evaluation:
// Figure 11 (normalized global WB/INV counts of Addr vs Addr+L) and Figure
// 12 (normalized execution time under HCC / Base / Addr / Addr+L).
//
// Usage:
//
//	interblock [-scale test|bench] [-counts] [-parallel N] [-timeout D] [-json] [-timing]
//	           [-check-coherence]
//
// Runs fan out across -parallel workers (default GOMAXPROCS) with results
// identical to a serial sweep; -timeout bounds each individual run. With
// -json the result is a machine-readable document on stdout (canonical
// unless -timing adds host wall times). -check-coherence attaches the
// shadow-memory coherence oracle to every run; a violation fails the
// cell with a labeled coherence error.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	hic "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("interblock: ")
	scale := flag.String("scale", "bench", "problem scale: test or bench")
	countsOnly := flag.Bool("counts", false, "print only Figure 11 (global WB/INV counts)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for the sweep")
	timeout := flag.Duration("timeout", 0, "per-run timeout (0 = none)")
	jsonOut := flag.Bool("json", false, "emit results as a machine-readable JSON document on stdout")
	timing := flag.Bool("timing", false, "include host wall times in -json output (not deterministic)")
	checkCoherence := flag.Bool("check-coherence", false, "attach the coherence oracle to every run")
	flag.Parse()

	s := hic.ScaleBench
	if *scale == "test" {
		s = hic.ScaleTest
	} else if *scale != "bench" {
		log.Fatalf("unknown scale %q", *scale)
	}

	opts := hic.RunOptions{Parallel: *parallel, Timeout: *timeout, CheckCoherence: *checkCoherence}
	res, err := hic.RunInterBlockOpts(context.Background(), s, opts)
	if *jsonOut {
		doc := res.Document(s)
		encode := doc.Encode
		if *timing {
			encode = doc.EncodeTiming
		}
		if encErr := encode(os.Stdout); encErr != nil {
			log.Fatal(encErr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		return
	}
	fmt.Println(res.Figure11.Render())
	if *countsOnly {
		return
	}
	fmt.Println(res.Figure12.Render())
	fmt.Println("Figure 12 mean normalized execution time:")
	means := res.Figure12.MeanTotals()
	for _, mode := range hic.InterModes {
		fmt.Printf("  %-8s %6.3f\n", mode, means[mode.String()])
	}
}
