// Command interblock regenerates the paper's inter-block evaluation:
// Figure 11 (normalized global WB/INV counts of Addr vs Addr+L) and Figure
// 12 (normalized execution time under HCC / Base / Addr / Addr+L).
//
// Usage:
//
//	interblock [-scale test|bench] [-counts]
package main

import (
	"flag"
	"fmt"
	"log"

	hic "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("interblock: ")
	scale := flag.String("scale", "bench", "problem scale: test or bench")
	countsOnly := flag.Bool("counts", false, "print only Figure 11 (global WB/INV counts)")
	flag.Parse()

	s := hic.ScaleBench
	if *scale == "test" {
		s = hic.ScaleTest
	} else if *scale != "bench" {
		log.Fatalf("unknown scale %q", *scale)
	}

	res, err := hic.RunInterBlock(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Figure11.Render())
	if *countsOnly {
		return
	}
	fmt.Println(res.Figure12.Render())
	fmt.Println("Figure 12 mean normalized execution time:")
	means := res.Figure12.MeanTotals()
	for _, mode := range hic.InterModes {
		fmt.Printf("  %-8s %6.3f\n", mode, means[mode.String()])
	}
}
