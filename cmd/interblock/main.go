// Command interblock regenerates the paper's inter-block evaluation:
// Figure 11 (normalized global WB/INV counts of Addr vs Addr+L) and Figure
// 12 (normalized execution time under HCC / Base / Addr / Addr+L).
//
// Usage:
//
//	interblock [-scale test|bench] [-counts] [-parallel N] [-timeout D] [-json] [-timing]
//	           [-check-coherence] [-metrics] [-trace-chrome F] [-schema v1|v2]
//	           [-cpuprofile F] [-memprofile F] [-server URL]
//
// Runs fan out across -parallel workers (default GOMAXPROCS) with results
// identical to a serial sweep; -timeout bounds each individual run. With
// -json the result is a machine-readable document on stdout (schema
// hic/v2; -schema v1 selects the legacy layout; canonical unless -timing
// adds host wall times). -check-coherence attaches the shadow-memory
// coherence oracle to every run; a violation fails the cell with a
// labeled coherence error. -metrics embeds per-run observability
// snapshots in the JSON records; -trace-chrome writes the sweep's stall
// timelines as a Chrome trace_event file (open in Perfetto). -server URL
// delegates the sweep (suite "inter") to a hicserve instance and prints
// the fetched document — byte-identical to a local -json run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	hic "repro"
	"repro/internal/cli"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("interblock: ")
	f := cli.Register(flag.CommandLine, cli.FigureFlags)
	countsOnly := flag.Bool("counts", false, "print only Figure 11 (global WB/INV counts)")
	flag.Parse()
	if err := f.Validate(); err != nil {
		log.Fatal(err)
	}
	s, err := f.ScaleValue()
	if err != nil {
		log.Fatal(err)
	}
	if f.Server != "" {
		if _, err := f.RunRemote(context.Background(), serve.Request{Suite: "inter"}, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	stopProfiles := f.StartProfiles()
	defer stopProfiles()

	res, err := hic.RunInter(context.Background(), s, f.Options()...)
	if f.JSON {
		if encErr := f.EncodeDoc(os.Stdout, res.Document(s)); encErr != nil {
			log.Fatal(encErr)
		}
	}
	if traceErr := f.WriteTraces(res.Traces); traceErr != nil {
		log.Fatal(traceErr)
	}
	if err != nil {
		log.Fatal(err)
	}
	if f.JSON {
		return
	}
	fmt.Println(res.Figure11.Render())
	if *countsOnly {
		return
	}
	fmt.Println(res.Figure12.Render())
	fmt.Println("Figure 12 mean normalized execution time:")
	means := res.Figure12.MeanTotals()
	for _, mode := range hic.InterModes {
		fmt.Printf("  %-8s %6.3f\n", mode, means[mode.String()])
	}
}
