// Command hicserve runs sweep-as-a-service: an HTTP/JSON server that
// executes the same experiment sweeps the CLIs run and answers with the
// same canonical documents, fronted by a bounded job queue, per-tenant
// concurrency limits, and a content-addressed result cache.
//
// Usage:
//
//	hicserve [-addr :8080] [-workers N] [-queue N] [-per-tenant N]
//	         [-parallel N] [-timeout D] [-cache-dir DIR]
//
// Endpoints (see internal/serve):
//
//	POST /v2/sweeps             submit a sweep request
//	GET  /v2/sweeps/{id}        job status with live per-cell progress
//	GET  /v2/sweeps/{id}/result the finished document, byte-identical
//	                            to the equivalent CLI -json invocation
//	GET  /v2/metrics            server counters (hic-metrics/v1)
//	GET  /healthz               liveness
//
// Every sweep CLI takes -server URL to run here instead of locally:
//
//	hicsim -json -scale test -server http://localhost:8080
//
// Results are cached by content address — a hash of the normalized
// request plus the server's code version. Because the simulator is
// deterministic, a cache hit returns exactly the bytes a fresh run
// would compute; a warm resubmit is answered at submit time with zero
// engine steps. -cache-dir persists the cache across restarts.
//
// -workers bounds concurrent sweeps, -queue the submitted backlog, and
// -per-tenant one tenant's in-flight jobs (tenants are named by the
// X-Hic-Tenant request header). Submits beyond either limit are refused
// with 429 and a Retry-After hint. -parallel and -timeout shape each
// sweep exactly like the CLI flags of the same names.
package main

import (
	"flag"
	"log"
	"net/http"
	"runtime"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hicserve: ")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent sweep jobs")
	queue := flag.Int("queue", 16, "submitted-job backlog bound (beyond it submits get 429)")
	perTenant := flag.Int("per-tenant", 4, "per-tenant in-flight job bound")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count within each sweep")
	timeout := flag.Duration("timeout", 0, "per-run timeout within a sweep (0 = none)")
	cacheDir := flag.String("cache-dir", "", "persist the result cache to this directory (default: memory only)")
	flag.Parse()

	s, err := serve.New(serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		PerTenant:  *perTenant,
		Parallel:   *parallel,
		Timeout:    *timeout,
		CacheDir:   *cacheDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("listening on %s (workers=%d queue=%d per-tenant=%d)", *addr, *workers, *queue, *perTenant)
	log.Fatal(srv.ListenAndServe())
}
