package main

// Build-and-run smoke tests: the binary is compiled into a temp dir and
// driven the way CI drives it, including the determinism guarantee of
// the -json document.

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/envelope"
	"repro/internal/litmus"
)

func buildLitmus(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "litmus")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestLitmusCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildLitmus(t)

	t.Run("full-suite-passes", func(t *testing.T) {
		out, err := exec.Command(bin, "-v").CombinedOutput()
		if err != nil {
			t.Fatalf("litmus -v: %v\n%s", err, out)
		}
		for _, want := range []string{"mp-annotated/Base: ok", "lock-lostupdate/Adaptive: ok", "schedules"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("json-is-deterministic", func(t *testing.T) {
		run := func() []byte {
			out, err := exec.Command(bin, "-json").Output()
			if err != nil {
				t.Fatalf("litmus -json: %v", err)
			}
			return out
		}
		a, b := run(), run()
		if !bytes.Equal(a, b) {
			t.Fatal("-json output differs across two identical runs")
		}
		var doc litmus.Document
		if err := json.Unmarshal(a, &doc); err != nil {
			t.Fatalf("decoding -json output: %v", err)
		}
		if doc.Schema != envelope.SchemaV2 || doc.Kind != envelope.KindLitmus {
			t.Errorf("schema/kind = %q/%q, want %q/%q", doc.Schema, doc.Kind, envelope.SchemaV2, envelope.KindLitmus)
		}
		if len(doc.Results) == 0 {
			t.Fatal("no results")
		}
		for _, r := range doc.Results {
			if !r.Verdict.OK {
				t.Errorf("%s", r.Verdict)
			}
			if r.Report.Schedules == 0 {
				t.Errorf("%s/%s: zero schedules", r.Report.Test, r.Report.Config)
			}
		}
	})

	t.Run("schema-v1-compat", func(t *testing.T) {
		out, err := exec.Command(bin, "-json", "-schema", "v1", "-test", "sb", "-config", "Base").Output()
		if err != nil {
			t.Fatalf("litmus -json -schema v1: %v", err)
		}
		var doc litmus.Document
		if err := json.Unmarshal(out, &doc); err != nil {
			t.Fatalf("decoding -json output: %v", err)
		}
		if doc.Schema != envelope.LitmusV1 || doc.Kind != "" {
			t.Errorf("schema/kind = %q/%q, want %q with no kind", doc.Schema, doc.Kind, envelope.LitmusV1)
		}
	})

	t.Run("test-and-config-filters", func(t *testing.T) {
		out, err := exec.Command(bin, "-test", "sb", "-config", "Base").CombinedOutput()
		if err != nil {
			t.Fatalf("litmus -test sb -config Base: %v\n%s", err, out)
		}
		if got := strings.TrimSpace(string(out)); got != "sb/Base: ok (expect none)" {
			t.Errorf("filtered run printed %q", got)
		}
	})

	t.Run("tiny-budget-exits-nonzero", func(t *testing.T) {
		out, err := exec.Command(bin, "-test", "sb", "-config", "Base", "-budget", "3").CombinedOutput()
		if err == nil {
			t.Fatalf("truncated exploration exited zero:\n%s", out)
		}
		if !strings.Contains(string(out), "not exhaustive") {
			t.Errorf("missing truncation diagnosis:\n%s", out)
		}
	})

	t.Run("unknown-test-exits-nonzero", func(t *testing.T) {
		if err := exec.Command(bin, "-test", "no-such-test").Run(); err == nil {
			t.Fatal("unknown test accepted")
		}
	})

	t.Run("unknown-config-exits-nonzero", func(t *testing.T) {
		if err := exec.Command(bin, "-config", "no-such-config").Run(); err == nil {
			t.Fatal("unknown config accepted")
		}
	})
}
