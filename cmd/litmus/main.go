// Command litmus runs the litmus-test suite: every test in
// internal/litmus's standard table, explored through all thread
// interleavings (up to the step budget) under each configuration, with
// outcomes checked against the declared allowed sets and the coherence
// oracle's visibility rules.
//
// Usage:
//
//	litmus [-test NAME] [-config NAME] [-budget N] [-max-schedules N] [-json]
//	       [-schema v1|v2] [-dpor=BOOL] [-enumerate -k N] [-server URL] [-v]
//
// By default every suite test runs under every configuration (Base,
// B+M+I, Adaptive) and one verdict line is printed per pair; -v adds
// exploration statistics and the outcome histogram. -test and -config
// restrict the matrix. The exit status is nonzero iff any verdict
// fails — an annotated test with a violation, an under-annotated test
// whose bug no schedule exposed (or exposed with the wrong
// attribution), or a non-exhaustive exploration.
//
// Exploration uses dynamic partial-order reduction; -dpor=false selects
// the exhaustive adjacent-swap explorer (same outcome sets, more
// schedules). -enumerate replaces the curated suite with the systematic
// enumeration of every litmus shape up to -k ops and fails unless every
// annotated program explores violation-free to exhaustion.
//
// With -json a single machine-readable document (schema hic/v2, kind
// "litmus"; -schema v1 selects the legacy hic-litmus/v1 layout) is
// emitted on stdout instead of the text report. The document is
// canonical: fixed key order, sorted outcome maps, no timestamps —
// byte-identical across runs. -server URL delegates the run to a
// hicserve instance and prints the fetched document — byte-identical
// to a local -json run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/litmus"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("litmus: ")
	f := cli.Register(flag.CommandLine, cli.JSONFlags|cli.FlagExplore|cli.FlagServer)
	testName := flag.String("test", "", "run only the named suite test")
	cfgName := flag.String("config", "", "run only the named configuration (Base, B+M+I, Adaptive)")
	budget := flag.Int("budget", 0, "per-schedule step budget (0 = default)")
	maxSched := flag.Int("max-schedules", 0, "total schedule cap per exploration (0 = default)")
	verbose := flag.Bool("v", false, "print exploration statistics and outcome histograms")
	flag.Parse()
	if err := f.Validate(); err != nil {
		log.Fatal(err)
	}

	if f.Server != "" {
		req := serve.Request{
			Suite: "litmus", Test: *testName, Config: *cfgName,
			Budget: *budget, MaxSchedules: *maxSched,
			Swap: !f.DPOR, Enumerate: f.Enumerate, K: f.K,
		}
		if _, err := f.RunRemote(context.Background(), req, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	tests := litmus.Suite
	if *testName != "" {
		t, ok := litmus.SuiteTest(*testName)
		if !ok {
			log.Fatalf("unknown test %q; suite tests: %s", *testName, suiteNames())
		}
		tests = []litmus.Test{t}
	}
	configs := litmus.Configs
	if *cfgName != "" {
		c, ok := litmus.ConfigByName(*cfgName)
		if !ok {
			log.Fatalf("unknown config %q; configs: %s", *cfgName, configNames())
		}
		configs = []litmus.Config{c}
	}
	opts := litmus.Options{Budget: *budget, MaxSchedules: *maxSched}
	if !f.DPOR {
		opts.Algo = litmus.AlgoSwap
	}

	var doc *litmus.Document
	if f.Enumerate {
		doc = litmus.EnumerateDocument(configs, f.K, opts)
	} else {
		var err error
		doc, err = litmus.SuiteDocument(tests, configs, opts)
		if err != nil {
			log.Fatal(err)
		}
	}

	if f.JSON {
		if f.SchemaV1() {
			doc = doc.LegacyV1()
		}
		if err := doc.Encode(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else if f.Enumerate {
		printSweeps(doc, f.K, *verbose)
	} else {
		printSuite(doc, *verbose)
	}
	if doc.Failed() {
		os.Exit(1)
	}
}

// printSuite renders the text report: one verdict line per
// (test, configuration) pair, plus exploration statistics with -v.
func printSuite(doc *litmus.Document, verbose bool) {
	for _, r := range doc.Results {
		fmt.Println(r.Verdict)
		if verbose {
			rep := r.Report
			fmt.Printf("  %d schedules, %d pruned, %d dead ends, %d violation schedule(s)\n",
				rep.Schedules, rep.Pruned, rep.DeadEnds, rep.ViolationSchedules)
			for _, o := range rep.SortedOutcomes() {
				fmt.Printf("  outcome %-24s count=%-6d allowed=%-5v sample=%s\n",
					o.Key, o.Count, o.Allowed, o.Sample)
			}
			for _, vi := range rep.Violations {
				fmt.Printf("  violation [%s] on %s: %s\n", vi.Class, vi.Schedule, vi.Detail)
			}
		}
	}
}

// printSweeps renders the -enumerate text report, one line per
// configuration sweep.
func printSweeps(doc *litmus.Document, k int, verbose bool) {
	for _, st := range doc.Sweeps {
		ok := len(st.Stats.Violating) == 0 && len(st.Stats.Failed) == 0
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		fmt.Printf("%s enumerate k=%d config=%s: %d programs, %d mutants\n",
			status, k, st.Config, st.Stats.Programs, st.Stats.Mutants)
		if verbose || !ok {
			fmt.Printf("  runs=%d schedules=%d dedup_cuts=%d states=%d\n",
				st.Stats.Runs, st.Stats.Schedules, st.Stats.DedupCuts, st.Stats.StatesSeen)
			for _, name := range st.Stats.Violating {
				fmt.Printf("  violating: %s\n", name)
			}
			for _, name := range st.Stats.Failed {
				fmt.Printf("  not exhaustive: %s\n", name)
			}
		}
	}
}

func suiteNames() string {
	s := ""
	for i, t := range litmus.Suite {
		if i > 0 {
			s += ", "
		}
		s += t.Name
	}
	return s
}

func configNames() string {
	s := ""
	for i, c := range litmus.Configs {
		if i > 0 {
			s += ", "
		}
		s += c.Name
	}
	return s
}
