// Command litmus runs the litmus-test suite: every test in
// internal/litmus's standard table, explored through all thread
// interleavings (up to the step budget) under each configuration, with
// outcomes checked against the declared allowed sets and the coherence
// oracle's visibility rules.
//
// Usage:
//
//	litmus [-test NAME] [-config NAME] [-budget N] [-max-schedules N] [-json]
//	       [-schema v1|v2] [-dpor=BOOL] [-enumerate -k N] [-v]
//
// By default every suite test runs under every configuration (Base,
// B+M+I, Adaptive) and one verdict line is printed per pair; -v adds
// exploration statistics and the outcome histogram. -test and -config
// restrict the matrix. The exit status is nonzero iff any verdict
// fails — an annotated test with a violation, an under-annotated test
// whose bug no schedule exposed (or exposed with the wrong
// attribution), or a non-exhaustive exploration.
//
// Exploration uses dynamic partial-order reduction; -dpor=false selects
// the exhaustive adjacent-swap explorer (same outcome sets, more
// schedules). -enumerate replaces the curated suite with the systematic
// enumeration of every litmus shape up to -k ops and fails unless every
// annotated program explores violation-free to exhaustion.
//
// With -json a single machine-readable document (schema hic/v2, kind
// "litmus"; -schema v1 selects the legacy hic-litmus/v1 layout) is
// emitted on stdout instead of the text report. The document is
// canonical: fixed key order, sorted outcome maps, no timestamps —
// byte-identical across runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/litmus"
	"repro/internal/runner"
)

// SchemaVersion identifies the legacy (-schema v1) document layout.
const SchemaVersion = "hic-litmus/v1"

// Result pairs one exploration's verdict with its full report.
type Result struct {
	Verdict litmus.Verdict `json:"verdict"`
	Report  *litmus.Report `json:"report"`
}

// Document is the -json output: the whole run, in suite-then-config
// order. The default envelope is hic/v2 with kind "litmus"; -schema v1
// emits SchemaVersion with no kind. Exactly one of Results (suite mode)
// and Sweeps (-enumerate) is populated.
type Document struct {
	Schema  string   `json:"schema"`
	Kind    string   `json:"kind,omitempty"`
	Budget  int      `json:"budget"`
	Results []Result `json:"results,omitempty"`
	Sweeps  []Sweep  `json:"sweeps,omitempty"`
}

// Sweep is one -enumerate sweep under one configuration.
type Sweep struct {
	Config string            `json:"config"`
	K      int               `json:"k"`
	Stats  litmus.SweepStats `json:"stats"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("litmus: ")
	f := cli.Register(flag.CommandLine, cli.JSONFlags|cli.FlagExplore)
	testName := flag.String("test", "", "run only the named suite test")
	cfgName := flag.String("config", "", "run only the named configuration (Base, B+M+I, Adaptive)")
	budget := flag.Int("budget", 0, "per-schedule step budget (0 = default)")
	maxSched := flag.Int("max-schedules", 0, "total schedule cap per exploration (0 = default)")
	verbose := flag.Bool("v", false, "print exploration statistics and outcome histograms")
	flag.Parse()
	if err := f.Validate(); err != nil {
		log.Fatal(err)
	}

	tests := litmus.Suite
	if *testName != "" {
		t, ok := litmus.SuiteTest(*testName)
		if !ok {
			log.Fatalf("unknown test %q; suite tests: %s", *testName, suiteNames())
		}
		tests = []litmus.Test{t}
	}
	configs := litmus.Configs
	if *cfgName != "" {
		c, ok := litmus.ConfigByName(*cfgName)
		if !ok {
			log.Fatalf("unknown config %q; configs: %s", *cfgName, configNames())
		}
		configs = []litmus.Config{c}
	}
	opts := litmus.Options{Budget: *budget, MaxSchedules: *maxSched}
	if !f.DPOR {
		opts.Algo = litmus.AlgoSwap
	}

	doc := Document{Schema: runner.SchemaV2, Kind: runner.KindLitmus, Budget: opts.Budget}
	if f.SchemaV1() {
		doc.Schema, doc.Kind = SchemaVersion, ""
	}
	failed := false
	if f.Enumerate {
		failed = enumerate(f, configs, opts, &doc, *verbose)
	} else {
		failed = runSuite(f, tests, configs, opts, &doc, *verbose)
	}

	if f.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runSuite explores every selected suite test under every selected
// configuration, printing verdicts in text mode, and reports whether
// any verdict failed.
func runSuite(f *cli.Flags, tests []litmus.Test, configs []litmus.Config, opts litmus.Options, doc *Document, verbose bool) bool {
	failed := false
	for _, t := range tests {
		for _, cfg := range configs {
			v, rep, err := litmus.Run(t, cfg, opts)
			if err != nil {
				log.Fatal(err)
			}
			doc.Results = append(doc.Results, Result{Verdict: v, Report: rep})
			if !v.OK {
				failed = true
			}
			if !f.JSON {
				fmt.Println(v)
				if verbose {
					fmt.Printf("  %d schedules, %d pruned, %d dead ends, %d violation schedule(s)\n",
						rep.Schedules, rep.Pruned, rep.DeadEnds, rep.ViolationSchedules)
					for _, o := range rep.SortedOutcomes() {
						fmt.Printf("  outcome %-24s count=%-6d allowed=%-5v sample=%s\n",
							o.Key, o.Count, o.Allowed, o.Sample)
					}
					for _, vi := range rep.Violations {
						fmt.Printf("  violation [%s] on %s: %s\n", vi.Class, vi.Schedule, vi.Detail)
					}
				}
			}
		}
	}
	return failed
}

// enumerate runs the -enumerate sweep: every litmus shape up to -k ops
// under every selected configuration. The sweep fails if any annotated
// program violates or any exploration is not exhaustive.
func enumerate(f *cli.Flags, configs []litmus.Config, opts litmus.Options, doc *Document, verbose bool) bool {
	failed := false
	eo := litmus.EnumOptions{MaxOps: f.K, MaxThreads: 3, DMA: true, Packed: true, Locks: 1, Barriers: true}
	for _, cfg := range configs {
		st := Sweep{Config: cfg.Name, K: f.K, Stats: litmus.Sweep(eo, cfg, opts)}
		doc.Sweeps = append(doc.Sweeps, st)
		ok := len(st.Stats.Violating) == 0 && len(st.Stats.Failed) == 0
		if !ok {
			failed = true
		}
		if !f.JSON {
			status := "PASS"
			if !ok {
				status = "FAIL"
			}
			fmt.Printf("%s enumerate k=%d config=%s: %d programs, %d mutants\n",
				status, f.K, cfg.Name, st.Stats.Programs, st.Stats.Mutants)
			if verbose || !ok {
				fmt.Printf("  runs=%d schedules=%d dedup_cuts=%d states=%d\n",
					st.Stats.Runs, st.Stats.Schedules, st.Stats.DedupCuts, st.Stats.StatesSeen)
				for _, name := range st.Stats.Violating {
					fmt.Printf("  violating: %s\n", name)
				}
				for _, name := range st.Stats.Failed {
					fmt.Printf("  not exhaustive: %s\n", name)
				}
			}
		}
	}
	return failed
}

func suiteNames() string {
	s := ""
	for i, t := range litmus.Suite {
		if i > 0 {
			s += ", "
		}
		s += t.Name
	}
	return s
}

func configNames() string {
	s := ""
	for i, c := range litmus.Configs {
		if i > 0 {
			s += ", "
		}
		s += c.Name
	}
	return s
}
