// Command benchjson converts `go test -bench` output into a small JSON
// document (schema hic-bench/v1) so benchmark numbers can be recorded in
// the repo (BENCH_hotpath.json) and uploaded as CI artifacts without
// hand-transcription.
//
// Usage:
//
//	benchjson [label=file ...]      # one labeled set per file
//	benchjson < bench.txt           # single set labeled "bench"
//	benchjson -trajectory [-sha S] [-date D] [file]
//
// Each set holds the parsed benchmark lines of one `go test -bench` run:
// name, iterations, ns/op, and — when -benchmem was on — B/op and
// allocs/op, plus any custom ReportMetric units. Context lines (goos,
// goarch, pkg, cpu) are folded into the set, keyed by the last `pkg:`
// seen so multi-package output concatenated from `go test ./...` parses
// cleanly.
//
// -trajectory instead emits one compact hic-bench-traj/v1 line — commit
// SHA, date, and ns/op per benchmark — meant to be appended to a growing
// JSON-lines file (BENCH_trajectory.jsonl, and the CI bench job's
// trajectory artifact), so the repo accumulates a queryable wall-clock
// history one entry per change. The SHA defaults to $GITHUB_SHA then
// `git rev-parse HEAD`; the date defaults to now (UTC, RFC 3339). Both
// flags exist so CI and tests can pin them.
//
// Compare two sets statistically with benchstat (see DESIGN.md
// "Performance"): benchjson records the snapshot; benchstat judges the
// delta.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BPerOp     *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the output document.
type Doc struct {
	Schema string             `json:"schema"`
	Goos   string             `json:"goos,omitempty"`
	Goarch string             `json:"goarch,omitempty"`
	CPU    string             `json:"cpu,omitempty"`
	Sets   map[string][]Bench `json:"sets"`
}

// TrajectoryEntry is one appendable bench-trajectory line (schema
// hic-bench-traj/v1): where the tree was, when it ran, and the headline
// ns/op per benchmark. Keys are sorted by Go's map marshaling, so equal
// inputs produce byte-equal lines.
type TrajectoryEntry struct {
	Schema     string             `json:"schema"`
	SHA        string             `json:"sha"`
	Date       string             `json:"date"`
	Goos       string             `json:"goos,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	traj := flag.Bool("trajectory", false, "emit one appendable hic-bench-traj/v1 JSON line instead of a document")
	sha := flag.String("sha", "", "commit SHA for -trajectory (default: $GITHUB_SHA, then git rev-parse HEAD)")
	date := flag.String("date", "", "RFC 3339 date for -trajectory (default: now, UTC)")
	flag.Parse()

	if *traj {
		in := io.Reader(os.Stdin)
		if flag.NArg() > 0 {
			f, err := os.Open(flag.Arg(0))
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			in = f
		}
		if err := writeTrajectory(os.Stdout, in, *sha, *date); err != nil {
			log.Fatal(err)
		}
		return
	}

	doc := Doc{Schema: "hic-bench/v1", Sets: map[string][]Bench{}}
	if flag.NArg() == 0 {
		parseInto(&doc, "bench", os.Stdin)
	} else {
		for _, arg := range flag.Args() {
			label, path, ok := strings.Cut(arg, "=")
			if !ok {
				log.Fatalf("argument %q is not label=file", arg)
			}
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			parseInto(&doc, label, f)
			f.Close()
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}

// writeTrajectory parses one bench run from r and writes a single
// trajectory line to w.
func writeTrajectory(w io.Writer, r io.Reader, sha, date string) error {
	doc := Doc{Sets: map[string][]Bench{}}
	parseInto(&doc, "bench", r)
	if sha == "" {
		sha = resolveSHA()
	}
	if date == "" {
		date = time.Now().UTC().Format(time.RFC3339)
	}
	e := TrajectoryEntry{
		Schema:     "hic-bench-traj/v1",
		SHA:        sha,
		Date:       date,
		Goos:       doc.Goos,
		CPU:        doc.CPU,
		Benchmarks: map[string]float64{},
	}
	for _, b := range doc.Sets["bench"] {
		e.Benchmarks[b.Name] = b.NsPerOp
	}
	return json.NewEncoder(w).Encode(e)
}

// resolveSHA finds the commit under benchmark: the CI-provided SHA when
// present, the working tree's HEAD otherwise.
func resolveSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func parseInto(doc *Doc, label string, r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				log.Fatalf("%s: %v", line, err)
			}
			b.Pkg = pkg
			doc.Sets[label] = append(doc.Sets[label], b)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	sort.SliceStable(doc.Sets[label], func(i, j int) bool {
		a, b := doc.Sets[label][i], doc.Sets[label][j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
}

// parseLine parses one result line:
//
//	BenchmarkX/sub-8  100  12.3 ns/op  4 B/op  1 allocs/op  5.0 widgets
//
// Values come in "<number> <unit>" pairs after the iteration count.
func parseLine(line string) (Bench, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, fmt.Errorf("too few fields")
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, fmt.Errorf("iterations: %v", err)
	}
	b := Bench{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, fmt.Errorf("value %q: %v", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			v := v
			b.BPerOp = &v
		case "allocs/op":
			v := v
			b.AllocsOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}
