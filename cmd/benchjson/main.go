// Command benchjson converts `go test -bench` output into a small JSON
// document (schema hic-bench/v1) so benchmark numbers can be recorded in
// the repo (BENCH_hotpath.json) and uploaded as CI artifacts without
// hand-transcription.
//
// Usage:
//
//	benchjson [label=file ...]      # one labeled set per file
//	benchjson < bench.txt           # single set labeled "bench"
//
// Each set holds the parsed benchmark lines of one `go test -bench` run:
// name, iterations, ns/op, and — when -benchmem was on — B/op and
// allocs/op, plus any custom ReportMetric units. Context lines (goos,
// goarch, pkg, cpu) are folded into the set, keyed by the last `pkg:`
// seen so multi-package output concatenated from `go test ./...` parses
// cleanly.
//
// Compare two sets statistically with benchstat (see DESIGN.md
// "Performance"): benchjson records the snapshot; benchstat judges the
// delta.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BPerOp     *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the output document.
type Doc struct {
	Schema string             `json:"schema"`
	Goos   string             `json:"goos,omitempty"`
	Goarch string             `json:"goarch,omitempty"`
	CPU    string             `json:"cpu,omitempty"`
	Sets   map[string][]Bench `json:"sets"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	doc := Doc{Schema: "hic-bench/v1", Sets: map[string][]Bench{}}

	if len(os.Args) < 2 {
		parseInto(&doc, "bench", os.Stdin)
	} else {
		for _, arg := range os.Args[1:] {
			label, path, ok := strings.Cut(arg, "=")
			if !ok {
				log.Fatalf("argument %q is not label=file", arg)
			}
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			parseInto(&doc, label, f)
			f.Close()
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}

func parseInto(doc *Doc, label string, r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				log.Fatalf("%s: %v", line, err)
			}
			b.Pkg = pkg
			doc.Sets[label] = append(doc.Sets[label], b)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	sort.SliceStable(doc.Sets[label], func(i, j int) bool {
		a, b := doc.Sets[label][i], doc.Sets[label][j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})
}

// parseLine parses one result line:
//
//	BenchmarkX/sub-8  100  12.3 ns/op  4 B/op  1 allocs/op  5.0 widgets
//
// Values come in "<number> <unit>" pairs after the iteration count.
func parseLine(line string) (Bench, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, fmt.Errorf("too few fields")
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, fmt.Errorf("iterations: %v", err)
	}
	b := Bench{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, fmt.Errorf("value %q: %v", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			v := v
			b.BPerOp = &v
		case "allocs/op":
			v := v
			b.AllocsOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}
