package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunIntraBlock/serial         	       1	3206353338 ns/op	         1.000 workers
BenchmarkRunIntraBlock/parallel       	       1	3195553338 ns/op	62054400 B/op	  361336 allocs/op
pkg: repro/internal/engine
BenchmarkEngineStep/threads-64        	      22	  51000000 ns/op
`

func TestParseIntoDocument(t *testing.T) {
	doc := Doc{Schema: "hic-bench/v1", Sets: map[string][]Bench{}}
	parseInto(&doc, "ci", strings.NewReader(sample))
	if doc.Goos != "linux" || doc.CPU == "" {
		t.Errorf("context not captured: goos=%q cpu=%q", doc.Goos, doc.CPU)
	}
	set := doc.Sets["ci"]
	if len(set) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(set))
	}
	// Sorted by (pkg, name): the engine benchmark sorts after the two
	// root-package sweeps despite appearing last in the input.
	if set[2].Name != "BenchmarkEngineStep/threads-64" || set[2].Pkg != "repro/internal/engine" {
		t.Errorf("sort order wrong: %+v", set[2])
	}
	if set[0].NsPerOp != 3195553338 || set[0].BPerOp == nil || *set[0].BPerOp != 62054400 {
		t.Errorf("parallel line misparsed: %+v", set[0])
	}
	if set[1].Metrics["workers"] != 1 {
		t.Errorf("custom metric lost: %+v", set[1])
	}
}

func TestTrajectoryEntry(t *testing.T) {
	var buf bytes.Buffer
	err := writeTrajectory(&buf, strings.NewReader(sample), "abc123", "2026-08-08T00:00:00Z")
	if err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if n := strings.Count(line, "\n"); n != 1 || !strings.HasSuffix(line, "\n") {
		t.Fatalf("want exactly one appendable line, got %q", line)
	}
	var e TrajectoryEntry
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Schema != "hic-bench-traj/v1" || e.SHA != "abc123" || e.Date != "2026-08-08T00:00:00Z" {
		t.Errorf("header wrong: %+v", e)
	}
	if e.Benchmarks["BenchmarkRunIntraBlock/serial"] != 3206353338 {
		t.Errorf("benchmarks = %v", e.Benchmarks)
	}
	if len(e.Benchmarks) != 3 {
		t.Errorf("want 3 benchmarks, got %d", len(e.Benchmarks))
	}

	// Pinned inputs produce byte-identical lines: the trajectory file
	// stays diffable and append-only.
	var again bytes.Buffer
	if err := writeTrajectory(&again, strings.NewReader(sample), "abc123", "2026-08-08T00:00:00Z"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("trajectory entry not deterministic")
	}
}
