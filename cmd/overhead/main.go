// Command overhead regenerates the paper's Section VII-A control/storage
// comparison between the hardware-coherent and hardware-incoherent cache
// hierarchies on the 4-block × 8-core machine (expected: the incoherent
// hierarchy saves about 102 KB).
//
// Usage:
//
//	overhead [-json] [-server URL]
//
// With -json the comparison is emitted as a machine-readable document on
// stdout (schema hic/v2, kind "storage") instead of the text table.
// -server URL delegates the computation to a hicserve instance and
// prints the fetched document — byte-identical to a local -json run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	hic "repro"
	"repro/internal/cli"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overhead: ")
	f := cli.Register(flag.CommandLine, cli.FlagJSON|cli.FlagServer)
	flag.Parse()
	if err := f.Validate(); err != nil {
		log.Fatal(err)
	}

	if f.Server != "" {
		req := serve.Request{Suite: "overhead"}
		if _, err := f.RunRemote(context.Background(), req, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	rep := hic.StorageReport()
	if !f.JSON {
		fmt.Print(rep.Render())
		return
	}
	if err := rep.Document().Encode(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
