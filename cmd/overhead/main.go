// Command overhead regenerates the paper's Section VII-A control/storage
// comparison between the hardware-coherent and hardware-incoherent cache
// hierarchies on the 4-block × 8-core machine (expected: the incoherent
// hierarchy saves about 102 KB).
//
// Usage:
//
//	overhead [-json]
//
// With -json the comparison is emitted as a machine-readable document on
// stdout (schema hic/v2, kind "storage") instead of the text table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	hic "repro"
	"repro/internal/cli"
	"repro/internal/overhead"
	"repro/internal/runner"
)

// item is one storage structure in the JSON document.
type item struct {
	Name string `json:"name"`
	Bits int64  `json:"bits"`
}

// document is the -json output of the storage comparison.
type document struct {
	Schema         string  `json:"schema"`
	Kind           string  `json:"kind"`
	Coherent       []item  `json:"coherent"`
	Incoherent     []item  `json:"incoherent"`
	CoherentBits   int64   `json:"coherent_bits"`
	IncoherentBits int64   `json:"incoherent_bits"`
	SavingsBits    int64   `json:"savings_bits"`
	SavingsKB      float64 `json:"savings_kb"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("overhead: ")
	f := cli.Register(flag.CommandLine, cli.FlagJSON)
	flag.Parse()

	rep := hic.StorageReport()
	if !f.JSON {
		fmt.Print(rep.Render())
		return
	}
	doc := document{
		Schema:         runner.SchemaV2,
		Kind:           runner.KindStorage,
		Coherent:       items(rep.Coherent),
		Incoherent:     items(rep.Incoherent),
		CoherentBits:   int64(rep.CoherentTotal()),
		IncoherentBits: int64(rep.IncoherentTotal()),
		SavingsBits:    int64(rep.Savings()),
		SavingsKB:      rep.Savings().KB(),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}

func items(in []overhead.Item) []item {
	out := make([]item, 0, len(in))
	for _, i := range in {
		out = append(out, item{Name: i.Name, Bits: int64(i.Bits)})
	}
	return out
}
