// Command overhead regenerates the paper's Section VII-A control/storage
// comparison between the hardware-coherent and hardware-incoherent cache
// hierarchies on the 4-block × 8-core machine (expected: the incoherent
// hierarchy saves about 102 KB).
package main

import (
	"fmt"

	hic "repro"
)

func main() {
	fmt.Print(hic.StorageReport().Render())
}
