// Command intrablock regenerates the paper's intra-block evaluation:
// Figure 9 (normalized execution time under HCC / Base / B+M / B+I / B+M+I
// with the INV/WB/lock/barrier/rest stall breakdown) and Figure 10
// (normalized network traffic of HCC vs B+M+I).
//
// Usage:
//
//	intrablock [-scale test|bench] [-traffic]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	hic "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("intrablock: ")
	scale := flag.String("scale", "bench", "problem scale: test or bench")
	trafficOnly := flag.Bool("traffic", false, "print only Figure 10 (traffic)")
	flag.Parse()

	s := hic.ScaleBench
	if *scale == "test" {
		s = hic.ScaleTest
	} else if *scale != "bench" {
		log.Fatalf("unknown scale %q", *scale)
	}

	res, err := hic.RunIntraBlock(s)
	if err != nil {
		log.Fatal(err)
	}
	if !*trafficOnly {
		fmt.Println(res.Figure9.Render())
		printMeans("Figure 9 mean normalized execution time", res.Figure9)
		fmt.Println()
	}
	fmt.Println(res.Figure10.Render())
	printMeans("Figure 10 mean normalized traffic", res.Figure10)
	os.Exit(0)
}

func printMeans(title string, f *hic.Figure) {
	fmt.Println(title + ":")
	means := f.MeanTotals()
	for _, label := range barOrder(f) {
		fmt.Printf("  %-8s %6.3f\n", label, means[label])
	}
}

func barOrder(f *hic.Figure) []string {
	if len(f.Groups) == 0 {
		return nil
	}
	var out []string
	for _, b := range f.Groups[0].Bars {
		out = append(out, b.Label)
	}
	return out
}
