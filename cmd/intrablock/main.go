// Command intrablock regenerates the paper's intra-block evaluation:
// Figure 9 (normalized execution time under HCC / Base / B+M / B+I / B+M+I
// with the INV/WB/lock/barrier/rest stall breakdown) and Figure 10
// (normalized network traffic of HCC vs B+M+I).
//
// Usage:
//
//	intrablock [-scale test|bench] [-traffic] [-parallel N] [-timeout D] [-json] [-timing]
//	           [-check-coherence]
//
// Runs fan out across -parallel workers (default GOMAXPROCS) with results
// identical to a serial sweep; -timeout bounds each individual run. With
// -json the result is a machine-readable document on stdout (canonical
// unless -timing adds host wall times). -check-coherence attaches the
// shadow-memory coherence oracle to every run; a violation fails the
// cell with a labeled coherence error.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	hic "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("intrablock: ")
	scale := flag.String("scale", "bench", "problem scale: test or bench")
	trafficOnly := flag.Bool("traffic", false, "print only Figure 10 (traffic)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for the sweep")
	timeout := flag.Duration("timeout", 0, "per-run timeout (0 = none)")
	jsonOut := flag.Bool("json", false, "emit results as a machine-readable JSON document on stdout")
	timing := flag.Bool("timing", false, "include host wall times in -json output (not deterministic)")
	checkCoherence := flag.Bool("check-coherence", false, "attach the coherence oracle to every run")
	flag.Parse()

	s := hic.ScaleBench
	if *scale == "test" {
		s = hic.ScaleTest
	} else if *scale != "bench" {
		log.Fatalf("unknown scale %q", *scale)
	}

	opts := hic.RunOptions{Parallel: *parallel, Timeout: *timeout, CheckCoherence: *checkCoherence}
	res, err := hic.RunIntraBlockOpts(context.Background(), s, opts)
	if *jsonOut {
		doc := res.Document(s)
		encode := doc.Encode
		if *timing {
			encode = doc.EncodeTiming
		}
		if encErr := encode(os.Stdout); encErr != nil {
			log.Fatal(encErr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		return
	}
	if !*trafficOnly {
		fmt.Println(res.Figure9.Render())
		printMeans("Figure 9 mean normalized execution time", res.Figure9)
		fmt.Println()
	}
	fmt.Println(res.Figure10.Render())
	printMeans("Figure 10 mean normalized traffic", res.Figure10)
}

func printMeans(title string, f *hic.Figure) {
	fmt.Println(title + ":")
	means := f.MeanTotals()
	for _, label := range barOrder(f) {
		fmt.Printf("  %-8s %6.3f\n", label, means[label])
	}
}

func barOrder(f *hic.Figure) []string {
	if len(f.Groups) == 0 {
		return nil
	}
	var out []string
	for _, b := range f.Groups[0].Bars {
		out = append(out, b.Label)
	}
	return out
}
