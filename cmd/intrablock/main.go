// Command intrablock regenerates the paper's intra-block evaluation:
// Figure 9 (normalized execution time under HCC / Base / B+M / B+I / B+M+I
// with the INV/WB/lock/barrier/rest stall breakdown) and Figure 10
// (normalized network traffic of HCC vs B+M+I).
//
// Usage:
//
//	intrablock [-scale test|bench] [-traffic] [-parallel N] [-timeout D] [-json] [-timing]
//	           [-check-coherence] [-metrics] [-trace-chrome F] [-schema v1|v2]
//	           [-cpuprofile F] [-memprofile F] [-server URL]
//
// Runs fan out across -parallel workers (default GOMAXPROCS) with results
// identical to a serial sweep; -timeout bounds each individual run. With
// -json the result is a machine-readable document on stdout (schema
// hic/v2; -schema v1 selects the legacy layout; canonical unless -timing
// adds host wall times). -check-coherence attaches the shadow-memory
// coherence oracle to every run; a violation fails the cell with a
// labeled coherence error. -metrics embeds per-run observability
// snapshots in the JSON records; -trace-chrome writes the sweep's stall
// timelines as a Chrome trace_event file (open in Perfetto). -server URL
// delegates the sweep (suite "intra") to a hicserve instance and prints
// the fetched document — byte-identical to a local -json run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	hic "repro"
	"repro/internal/cli"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("intrablock: ")
	f := cli.Register(flag.CommandLine, cli.FigureFlags)
	trafficOnly := flag.Bool("traffic", false, "print only Figure 10 (traffic)")
	flag.Parse()
	if err := f.Validate(); err != nil {
		log.Fatal(err)
	}
	s, err := f.ScaleValue()
	if err != nil {
		log.Fatal(err)
	}
	if f.Server != "" {
		if _, err := f.RunRemote(context.Background(), serve.Request{Suite: "intra"}, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	stopProfiles := f.StartProfiles()
	defer stopProfiles()

	res, err := hic.RunIntra(context.Background(), s, f.Options()...)
	if f.JSON {
		if encErr := f.EncodeDoc(os.Stdout, res.Document(s)); encErr != nil {
			log.Fatal(encErr)
		}
	}
	if traceErr := f.WriteTraces(res.Traces); traceErr != nil {
		log.Fatal(traceErr)
	}
	if err != nil {
		log.Fatal(err)
	}
	if f.JSON {
		return
	}
	if !*trafficOnly {
		fmt.Println(res.Figure9.Render())
		printMeans("Figure 9 mean normalized execution time", res.Figure9)
		fmt.Println()
	}
	fmt.Println(res.Figure10.Render())
	printMeans("Figure 10 mean normalized traffic", res.Figure10)
}

func printMeans(title string, f *hic.Figure) {
	fmt.Println(title + ":")
	means := f.MeanTotals()
	for _, label := range barOrder(f) {
		fmt.Printf("  %-8s %6.3f\n", label, means[label])
	}
}

func barOrder(f *hic.Figure) []string {
	if len(f.Groups) == 0 {
		return nil
	}
	var out []string
	for _, b := range f.Groups[0].Bars {
		out = append(out, b.Label)
	}
	return out
}
