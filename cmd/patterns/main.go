// Command patterns regenerates the paper's Table I: the communication-
// pattern classification of the intra-block applications, alongside a
// census of the synchronization operations each actually executes.
//
// Usage:
//
//	patterns [-scale test|bench]
package main

import (
	"flag"
	"fmt"
	"log"

	hic "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("patterns: ")
	scale := flag.String("scale", "test", "problem scale: test or bench")
	flag.Parse()

	s := hic.ScaleTest
	if *scale == "bench" {
		s = hic.ScaleBench
	} else if *scale != "test" {
		log.Fatalf("unknown scale %q", *scale)
	}
	out, err := hic.PatternTable(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
