// Command hictrace records an intra-block workload's per-thread
// instruction streams to trace files, replays recorded traces under any
// configuration, or dumps a trace as text.
//
// Usage:
//
//	hictrace record -app fft -config B+M+I -dir /tmp/traces
//	hictrace replay -config Base -dir /tmp/traces -threads 16 [-json]
//	hictrace dump -file /tmp/traces/t0.trace [-n 50]
//
// With -json, replay emits its timing as a machine-readable document
// (schema hic-replay/v1) on stdout. The document carries simulated
// cycles only — no host times — so two replays of the same traces are
// byte-identical.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"

	hic "repro"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hictrace: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: hictrace record|replay|dump [flags]")
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "dump":
		dump(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
}

func configByName(name string) hic.Config {
	for _, cfg := range hic.IntraConfigs {
		if cfg.Name == name {
			return cfg
		}
	}
	log.Fatalf("unknown config %q (want HCC, Base, B+M, B+I, or B+M+I)", name)
	panic("unreachable")
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	app := fs.String("app", "fft", "workload name (see cmd/patterns for the list)")
	config := fs.String("config", "B+M+I", "configuration to record under")
	dir := fs.String("dir", ".", "output directory")
	fs.Parse(args)

	var w *hic.Workload
	for _, cand := range hic.IntraWorkloads(hic.ScaleTest) {
		if cand.Name == *app {
			w = cand
		}
	}
	if w == nil {
		log.Fatalf("unknown workload %q", *app)
	}
	cfg := configByName(*config)
	guests := w.Guests(cfg)
	writers := make([]*trace.Writer, len(guests))
	for i := range guests {
		f, err := os.Create(filepath.Join(*dir, "t"+strconv.Itoa(i)+".trace"))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tw, err := trace.NewWriter(f)
		if err != nil {
			log.Fatal(err)
		}
		writers[i] = tw
		guests[i] = trace.Record(guests[i], tw)
	}
	h := hic.NewHierarchy(hic.NewIntraMachine(), cfg)
	res, err := hic.Run(h, guests)
	if err != nil {
		log.Fatal(err)
	}
	var ops int64
	for _, tw := range writers {
		if err := tw.Close(); err != nil {
			log.Fatal(err)
		}
		ops += tw.Len()
	}
	fmt.Printf("recorded %s under %s: %d threads, %d ops, %d cycles\n",
		w.Name, cfg.Name, len(guests), ops, res.Cycles)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	config := fs.String("config", "B+M+I", "configuration to replay under")
	dir := fs.String("dir", ".", "trace directory")
	threads := fs.Int("threads", 16, "thread count of the recording")
	jsonOut := fs.Bool("json", false, "emit replay timing as a deterministic JSON document")
	fs.Parse(args)

	cfg := configByName(*config)
	guests := make([]hic.Guest, *threads)
	for i := range guests {
		f, err := os.Open(filepath.Join(*dir, "t"+strconv.Itoa(i)+".trace"))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			log.Fatal(err)
		}
		guests[i] = trace.Replay(r)
	}
	h := hic.NewHierarchy(hic.NewIntraMachine(), cfg)
	res, err := hic.Run(h, guests)
	if err != nil {
		log.Fatal(err)
	}
	inv, wb, lock, barrier, rest := res.Stalls.Figure9()
	if *jsonOut {
		doc := struct {
			Schema  string `json:"schema"`
			Config  string `json:"config"`
			Threads int    `json:"threads"`
			Cycles  int64  `json:"cycles"`
			Inv     int64  `json:"inv_stall"`
			WB      int64  `json:"wb_stall"`
			Lock    int64  `json:"lock_stall"`
			Barrier int64  `json:"barrier_stall"`
			Rest    int64  `json:"rest"`
		}{"hic-replay/v1", cfg.Name, *threads, res.Cycles, inv, wb, lock, barrier, rest}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("replayed under %s: %d cycles (inv=%d wb=%d lock=%d barrier=%d rest=%d)\n",
		cfg.Name, res.Cycles, inv, wb, lock, barrier, rest)
}

func dump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	file := fs.String("file", "", "trace file")
	n := fs.Int("n", 0, "max ops to print (0 = all)")
	fs.Parse(args)
	if *file == "" {
		log.Fatal("dump needs -file")
	}
	f, err := os.Open(*file)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; *n == 0 || i < *n; i++ {
		op, err := r.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %v\n", i, op)
	}
}
