package main

// Build-and-run smoke tests mirroring cmd/hicsim's: the binary is
// compiled into a temp dir and driven through a full
// record -> replay -> dump round trip the way a user would.

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildHictrace(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hictrace")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestHictraceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildHictrace(t)
	dir := t.TempDir()

	out, err := exec.Command(bin, "record", "-app", "fft", "-config", "B+M+I", "-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("hictrace record: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "recorded fft under B+M+I") {
		t.Fatalf("record summary missing:\n%s", out)
	}
	traces, err := filepath.Glob(filepath.Join(dir, "t*.trace"))
	if err != nil || len(traces) == 0 {
		t.Fatalf("no trace files written (%v)", err)
	}

	t.Run("replay", func(t *testing.T) {
		out, err := exec.Command(bin, "replay", "-config", "Base",
			"-dir", dir, "-threads", "16").CombinedOutput()
		if err != nil {
			t.Fatalf("hictrace replay: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "replayed under Base:") {
			t.Errorf("replay summary missing:\n%s", out)
		}
	})

	t.Run("replay-json-deterministic", func(t *testing.T) {
		run := func() []byte {
			out, err := exec.Command(bin, "replay", "-config", "Base",
				"-dir", dir, "-threads", "16", "-json").Output()
			if err != nil {
				t.Fatalf("hictrace replay -json: %v", err)
			}
			return out
		}
		a, b := run(), run()
		if !bytes.Equal(a, b) {
			t.Fatalf("replay -json differs across runs:\n%s\nvs\n%s", a, b)
		}
		var doc struct {
			Schema string `json:"schema"`
			Config string `json:"config"`
			Cycles int64  `json:"cycles"`
		}
		if err := json.Unmarshal(a, &doc); err != nil {
			t.Fatalf("decoding replay -json: %v", err)
		}
		if doc.Schema != "hic-replay/v1" || doc.Config != "Base" {
			t.Errorf("schema/config = %s/%s, want hic-replay/v1/Base", doc.Schema, doc.Config)
		}
		if doc.Cycles <= 0 {
			t.Errorf("cycles = %d, want > 0", doc.Cycles)
		}
	})

	t.Run("dump-truncation", func(t *testing.T) {
		full, err := exec.Command(bin, "dump", "-file", traces[0]).Output()
		if err != nil {
			t.Fatalf("hictrace dump: %v", err)
		}
		fullLines := strings.Count(string(full), "\n")
		if fullLines <= 5 {
			t.Fatalf("trace too short (%d lines) to exercise -n", fullLines)
		}
		head, err := exec.Command(bin, "dump", "-file", traces[0], "-n", "5").Output()
		if err != nil {
			t.Fatalf("hictrace dump -n 5: %v", err)
		}
		if got := strings.Count(string(head), "\n"); got != 5 {
			t.Errorf("dump -n 5 printed %d lines", got)
		}
		if !bytes.HasPrefix(full, head) {
			t.Error("dump -n 5 is not a prefix of the full dump")
		}
	})

	t.Run("dump-missing-file-exits-nonzero", func(t *testing.T) {
		if err := exec.Command(bin, "dump", "-file", filepath.Join(dir, "nope.trace")).Run(); err == nil {
			t.Fatal("missing trace file accepted")
		}
	})

	t.Run("bad-subcommand-exits-nonzero", func(t *testing.T) {
		if err := exec.Command(bin, "transmogrify").Run(); err == nil {
			t.Fatal("unknown subcommand accepted")
		}
	})

}
