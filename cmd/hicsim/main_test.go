package main

// Build-and-run smoke tests of the CLI flag plumbing: the binary is
// compiled into a temp dir and driven the way CI and users drive it.
// These are the tests that catch a flag that parses but is never wired
// into RunOptions.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/envelope"
	"repro/internal/obs"
	"repro/internal/runner"
)

func buildHicsim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hicsim")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestHicsimFlagPlumbing(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildHicsim(t)

	t.Run("json-check-coherence", func(t *testing.T) {
		cmd := exec.Command(bin, "-scale", "test", "-parallel", "4",
			"-timeout", "2m", "-json", "-check", "-check-coherence")
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("hicsim: %v\nstderr:\n%s", err, stderr.String())
		}
		doc, err := runner.Decode(&stdout)
		if err != nil {
			t.Fatalf("decoding -json output: %v", err)
		}
		if doc.Schema != envelope.SchemaV2 || doc.Kind != envelope.KindResults {
			t.Errorf("schema/kind = %q/%q, want %q/%q", doc.Schema, doc.Kind, envelope.SchemaV2, envelope.KindResults)
		}
		if doc.Scale != "test" || doc.Suite != "all" {
			t.Errorf("scale/suite = %s/%s, want test/all", doc.Scale, doc.Suite)
		}
		if len(doc.Runs) == 0 {
			t.Fatal("no run records")
		}
		for _, r := range doc.Runs {
			if r.Error != "" {
				t.Errorf("%s/%s failed under the oracle: [%s] %s", r.Workload, r.Config, r.ErrorKind, r.Error)
			}
		}
	})

	t.Run("schema-v1-compat", func(t *testing.T) {
		cmd := exec.Command(bin, "-scale", "test", "-parallel", "4", "-json", "-metrics", "-schema", "v1")
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("hicsim: %v\nstderr:\n%s", err, stderr.String())
		}
		doc, err := runner.Decode(&stdout)
		if err != nil {
			t.Fatalf("decoding -json output: %v", err)
		}
		if doc.Schema != envelope.ResultsV1 || doc.Kind != "" {
			t.Errorf("schema/kind = %q/%q, want %q with no kind", doc.Schema, doc.Kind, envelope.ResultsV1)
		}
		// The v1 layout predates per-run metrics: the compatibility
		// writer must strip them even when -metrics recorded them.
		for _, r := range doc.Runs {
			if r.Metrics != nil {
				t.Errorf("%s/%s: v1 document carries a metrics snapshot", r.Workload, r.Config)
			}
		}
	})

	t.Run("metrics-and-trace-chrome", func(t *testing.T) {
		trace := filepath.Join(t.TempDir(), "trace.json")
		cmd := exec.Command(bin, "-scale", "test", "-parallel", "4", "-json", "-metrics", "-trace-chrome", trace)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("hicsim: %v\nstderr:\n%s", err, stderr.String())
		}
		doc, err := runner.Decode(&stdout)
		if err != nil {
			t.Fatalf("decoding -json output: %v", err)
		}
		for _, r := range doc.Runs {
			if r.Metrics == nil {
				t.Errorf("%s/%s: no metrics snapshot in run record", r.Workload, r.Config)
				continue
			}
			if r.Metrics.Schema != obs.MetricsSchema {
				t.Errorf("%s/%s: metrics schema %q", r.Workload, r.Config, r.Metrics.Schema)
			}
			if len(r.Metrics.StallCycles) == 0 && r.Cycles > 0 {
				t.Errorf("%s/%s: metrics snapshot has no stall cycles", r.Workload, r.Config)
			}
		}
		raw, err := os.ReadFile(trace)
		if err != nil {
			t.Fatalf("reading -trace-chrome output: %v", err)
		}
		var tf struct {
			TraceEvents []map[string]any `json:"traceEvents"`
			OtherData   map[string]any   `json:"otherData"`
		}
		if err := json.Unmarshal(raw, &tf); err != nil {
			t.Fatalf("-trace-chrome output is not valid JSON: %v", err)
		}
		if len(tf.TraceEvents) == 0 {
			t.Fatal("-trace-chrome output has no trace events")
		}
		if tf.OtherData["timestamp_unit"] != "cycles" {
			t.Errorf("otherData = %v, want timestamp_unit=cycles", tf.OtherData)
		}
	})

	t.Run("faults-matrix", func(t *testing.T) {
		out, err := exec.Command(bin, "-scale", "test", "-parallel", "4", "-faults", "matrix").CombinedOutput()
		if err != nil {
			t.Fatalf("hicsim -faults matrix: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "Buggy-annotation robustness matrix") {
			t.Errorf("missing matrix header:\n%s", out)
		}
		if !strings.Contains(string(out), "coherence") {
			t.Errorf("matrix reports no detected coherence violations:\n%s", out)
		}
	})

	t.Run("faults-custom-plan", func(t *testing.T) {
		out, err := exec.Command(bin, "-scale", "test", "-parallel", "4",
			"-faults", "delay-wb@16; delay-wb@64").CombinedOutput()
		if err != nil {
			t.Fatalf("hicsim -faults PLAN: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "custom") {
			t.Errorf("custom plan not reported as its own class:\n%s", out)
		}
	})

	t.Run("bad-fault-plan-exits-nonzero", func(t *testing.T) {
		out, err := exec.Command(bin, "-scale", "test", "-faults", "drop-wb@notanumber").CombinedOutput()
		if err == nil {
			t.Fatalf("bad fault plan accepted:\n%s", out)
		}
	})

	t.Run("bad-flag-exits-nonzero", func(t *testing.T) {
		if err := exec.Command(bin, "-definitely-not-a-flag").Run(); err == nil {
			t.Fatal("unknown flag accepted")
		}
	})

	t.Run("bad-scale-exits-nonzero", func(t *testing.T) {
		if err := exec.Command(bin, "-scale", "huge").Run(); err == nil {
			t.Fatal("unknown scale accepted")
		}
	})
}
