// Command hicsim runs the complete reproduction — Table I, the Section
// VII-A storage comparison, and Figures 9 through 12 — and prints an
// EXPERIMENTS.md-style report comparing against the paper's headline
// numbers.
//
// Usage:
//
//	hicsim [-scale test|bench]
package main

import (
	"flag"
	"fmt"
	"log"

	hic "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hicsim: ")
	scale := flag.String("scale", "bench", "problem scale: test or bench")
	flag.Parse()

	s := hic.ScaleBench
	if *scale == "test" {
		s = hic.ScaleTest
	} else if *scale != "bench" {
		log.Fatalf("unknown scale %q", *scale)
	}

	fmt.Println("== E1: Table I =================================================")
	table1, err := hic.PatternTable(hic.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table1)

	fmt.Println("== E2: Section VII-A storage ===================================")
	fmt.Println(hic.StorageReport().Render())

	fmt.Println("== E3 + E4: intra-block (Figures 9, 10) ========================")
	intra, err := hic.RunIntraBlock(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(intra.Figure9.Render())
	m9 := intra.Figure9.MeanTotals()
	fmt.Printf("mean normalized execution time: Base %.3f (paper ~1.20), B+M+I %.3f (paper ~1.02)\n\n",
		m9["Base"], m9["B+M+I"])
	fmt.Println(intra.Figure10.Render())
	m10 := intra.Figure10.MeanTotals()
	fmt.Printf("mean normalized traffic: B+M+I %.3f (paper ~0.96)\n\n", m10["B+M+I"])

	fmt.Println("== E5 + E6: inter-block (Figures 11, 12) =======================")
	inter, err := hic.RunInterBlock(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(inter.Figure11.Render())
	fmt.Println(inter.Figure12.Render())
	m12 := inter.Figure12.MeanTotals()
	fmt.Printf("mean normalized execution time: Base %.3f, Addr %.3f, Addr+L %.3f (paper: Addr+L ~1.05, -31%% vs Base, -5%% vs Addr)\n",
		m12["Base"], m12["Addr"], m12["Addr+L"])
}
