// Command hicsim runs the complete reproduction — Table I, the Section
// VII-A storage comparison, and Figures 9 through 12 — and prints an
// EXPERIMENTS.md-style report comparing against the paper's headline
// numbers.
//
// Usage:
//
//	hicsim [-scale test|bench] [-parallel N] [-timeout D] [-json] [-timing] [-check]
//	       [-check-coherence] [-faults matrix|PLAN] [-metrics] [-trace-chrome F]
//	       [-schema v1|v2] [-cpuprofile F] [-memprofile F]
//	       [-blocks N] [-cores-per-block N] [-block-parallel] [-server URL]
//
// -block-parallel runs every incoherent-hierarchy simulation on the
// block-parallel engine — one event heap per block on its own goroutine
// between deterministic sync epochs. Output is byte-identical to the
// serial engine; fault-injected and recorder-attached runs silently fall
// back to it.
//
// -blocks N switches to the E7 many-core block-scaling sweep instead of
// the paper figures: Jacobi and NAS EP on machines of 1, 2, 4, ...
// blocks up to N, each with -cores-per-block cores (default 8), under
// Addr+L. `hicsim -blocks 128 -block-parallel` is the 1024-core sweep.
//
// Runs fan out across -parallel workers (default GOMAXPROCS); results are
// identical to a serial sweep. -timeout bounds each individual run; a run
// that exceeds it fails its own cell instead of hanging the sweep.
//
// -check-coherence attaches the shadow-memory coherence oracle to every
// run: each load is checked against the happens-before-legal value set
// and a violation fails the cell with a labeled coherence error.
//
// -faults runs the buggy-annotation robustness experiment instead of the
// figures: "matrix" injects the canonical fault classes (dropped and
// delayed writebacks, skipped invalidations, a lying IEB, an over-capped
// MEB) into every intra-block application; any other argument is a fault
// plan in the internal/faultinject grammar injected as-is. The detection
// matrix is printed and the command exits nonzero only on harness
// failures — detected violations are the experiment's successful
// outcome.
//
// With -json the figures and per-run metrics are emitted as a single
// machine-readable document on stdout (schema hic/v2, kind "results";
// -schema v1 selects the legacy hic-results/v1 layout) instead of the
// text report; Table I and the storage report are text-only. The JSON is
// canonical — byte-identical for serial and parallel runs — unless
// -timing adds host wall times. With -check the paper's expected
// config-vs-config orderings (DESIGN.md §4) are evaluated against the
// results and the command exits nonzero on any violation; this is the
// gate CI runs.
//
// -metrics attaches the observability layer to every run and embeds each
// cell's deterministic snapshot (cache/MEB/IEB counters, NoC histograms,
// stall-cycle totals) in its JSON run record. -trace-chrome writes the
// sweep's per-core stall timelines as a Chrome trace_event file, one
// process per cell, viewable in Perfetto or chrome://tracing.
//
// -cpuprofile and -memprofile write pprof profiles of the sweep (see
// DESIGN.md "Performance" for the profiling workflow); sweep goroutines
// are labeled workload/config, so `go tool pprof -tags` attributes
// samples to experiment cells.
//
// -server URL delegates the sweep to a hicserve instance (suite "all",
// or "manycore" with -blocks) and prints the fetched document —
// byte-identical to a local -json run; warm resubmits are answered from
// the server's content-addressed cache without re-simulating. -check
// still runs locally, against the fetched document.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	hic "repro"
	"repro/internal/cli"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/shapecheck"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hicsim: ")
	f := cli.Register(flag.CommandLine, cli.SweepFlags)
	flag.Parse()
	if err := f.Validate(); err != nil {
		log.Fatal(err)
	}
	s, err := f.ScaleValue()
	if err != nil {
		log.Fatal(err)
	}
	stopProfiles := f.StartProfiles()
	defer stopProfiles()

	opts := f.Options()
	ctx := context.Background()

	if f.Server != "" {
		runRemote(ctx, f)
		return
	}

	if f.Blocks > 0 {
		runManycore(ctx, f, s, opts)
		return
	}

	if f.Faults != "" {
		rep, err := hic.RunBuggyAnnotation(ctx, s, opts...)
		if rep != nil {
			fmt.Print(rep.Render())
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if f.JSON || f.Check || f.Tracing() {
		intra, intraErr := hic.RunIntra(ctx, s, opts...)
		inter, interErr := hic.RunInter(ctx, s, opts...)
		doc := runner.Merge(intra.Document(s), inter.Document(s))
		if f.JSON {
			if err := f.EncodeDoc(os.Stdout, doc); err != nil {
				log.Fatal(err)
			}
		}
		if err := f.WriteTraces(append(intra.Traces, inter.Traces...)); err != nil {
			log.Fatal(err)
		}
		for _, err := range []error{intraErr, interErr} {
			if err != nil {
				log.Print(err)
			}
		}
		if f.Check {
			vs := shapecheck.Check(doc)
			fmt.Fprint(os.Stderr, shapecheck.Render(vs))
			if len(vs) > 0 {
				os.Exit(1)
			}
		}
		if intraErr != nil || interErr != nil {
			os.Exit(1)
		}
		return
	}

	fmt.Println("== E1: Table I =================================================")
	table1, err := hic.PatternTable(hic.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table1)

	fmt.Println("== E2: Section VII-A storage ===================================")
	fmt.Println(hic.StorageReport().Render())

	fmt.Println("== E3 + E4: intra-block (Figures 9, 10) ========================")
	start := time.Now()
	intra, err := hic.RunIntra(ctx, s, opts...)
	if err != nil {
		log.Fatal(err)
	}
	intraWall := time.Since(start)
	fmt.Println(intra.Figure9.Render())
	m9 := intra.Figure9.MeanTotals()
	fmt.Printf("mean normalized execution time: Base %.3f (paper ~1.20), B+M+I %.3f (paper ~1.02)\n\n",
		m9["Base"], m9["B+M+I"])
	fmt.Println(intra.Figure10.Render())
	m10 := intra.Figure10.MeanTotals()
	fmt.Printf("mean normalized traffic: B+M+I %.3f (paper ~0.96)\n\n", m10["B+M+I"])

	fmt.Println("== E5 + E6: inter-block (Figures 11, 12) =======================")
	start = time.Now()
	inter, err := hic.RunInter(ctx, s, opts...)
	if err != nil {
		log.Fatal(err)
	}
	interWall := time.Since(start)
	fmt.Println(inter.Figure11.Render())
	fmt.Println(inter.Figure12.Render())
	m12 := inter.Figure12.MeanTotals()
	fmt.Printf("mean normalized execution time: Base %.3f, Addr %.3f, Addr+L %.3f (paper: Addr+L ~1.05, -31%% vs Base, -5%% vs Addr)\n",
		m12["Base"], m12["Addr"], m12["Addr+L"])
	fmt.Printf("\nsweep wall time (%d workers): intra %s, inter %s\n",
		hic.NewRunOptions(opts...).Workers(1<<30), intraWall.Round(time.Millisecond), interWall.Round(time.Millisecond))
}

// runRemote delegates the sweep to the -server instance and prints the
// fetched document. The shapecheck gate is not a server concern: -check
// decodes the fetched bytes and evaluates the orderings locally, so the
// gate behaves identically either way.
func runRemote(ctx context.Context, f *cli.Flags) {
	req := serve.Request{Suite: "all"}
	if f.Blocks > 0 {
		req = serve.Request{Suite: "manycore", Blocks: f.Blocks, CoresPerBlock: f.CoresPerBlock}
	}
	data, err := f.RunRemote(ctx, req, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if f.Check {
		doc, err := runner.Decode(bytes.NewReader(data))
		if err != nil {
			log.Fatalf("decoding served document: %v", err)
		}
		vs := shapecheck.Check(doc)
		fmt.Fprint(os.Stderr, shapecheck.Render(vs))
		if len(vs) > 0 {
			os.Exit(1)
		}
	}
}

// runManycore executes the E7 block-scaling sweep selected by -blocks:
// power-of-two machines up to -blocks blocks of -cores-per-block cores,
// e.g. `hicsim -blocks 128 -cores-per-block 8 -block-parallel` for the
// 1024-core sweep. With -json the document (suite "manycore") is emitted
// on stdout; otherwise the normalized-execution-time curve is rendered
// as text.
func runManycore(ctx context.Context, f *cli.Flags, s hic.Scale, opts []hic.Option) {
	start := time.Now()
	res, err := hic.RunManycore(ctx, s, hic.ManycoreBlockCounts(f.Blocks), f.CoresPerBlock, opts...)
	wall := time.Since(start)
	if f.JSON {
		if res != nil {
			if encErr := f.EncodeDoc(os.Stdout, res.Document(s)); encErr != nil {
				log.Fatal(encErr)
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== E7: block scaling (up to %d blocks x %d cores) ==============\n",
		f.Blocks, f.CoresPerBlock)
	fmt.Println(res.Curve.Render())
	fmt.Printf("sweep wall time (%d workers): %s\n",
		hic.NewRunOptions(opts...).Workers(1<<30), wall.Round(time.Millisecond))
}
