// Command hicfuzz runs the annotation-robustness fuzz campaign: every
// seed in the range generates a random concurrent program (fuzzgen),
// which is checked — annotated and under-annotated-mutant forms alike —
// under the shadow-SC coherence oracle and across the three execution
// engines under every incoherent buffer configuration.
//
// Usage:
//
//	hicfuzz [-seeds LO:HI] [-mutants N] [-budget D] [-config NAME]
//	        [-parallel N] [-json] [-timing] [-v]
//	hicfuzz -corpus DIR [-seeds LO:HI]
//
// The campaign passes iff every annotated program is violation-free,
// every mutant is detected with attribution or provably masked, and all
// three engines agree byte for byte on every case; any breach shrinks
// to a minimal litmus-DSL repro, printed with the failure (error_kind
// "fuzz-repro" in -json), and the exit status is 1.
//
// With -json the campaign report is emitted on stdout under the hic/v2
// envelope with kind "fuzz". The document is canonical — host wall
// times are stripped unless -timing — so identical invocations are
// byte-identical whatever the worker count.
//
// With -corpus the seed range is written as Go fuzz corpus files
// (one "go test fuzz v1" input per seed) into the directory, seeding
// `go test -fuzz FuzzAnnotatedProgram ./internal/fuzzgen/`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cli"
	"repro/internal/fuzzgen"
	"repro/internal/litmus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hicfuzz: ")
	f := cli.Register(flag.CommandLine, cli.FuzzFlags)
	seeds := flag.String("seeds", "1:201", "seed range LO:HI (half-open; one program per seed)")
	mutants := flag.Int("mutants", 2, "under-annotated mutants derived per program")
	budget := flag.Duration("budget", 0, "campaign wall-time budget: cells starting after it are skipped (0 = none)")
	cfgName := flag.String("config", "", "run only the named configuration (Base, B+M, B+I, B+M+I)")
	corpus := flag.String("corpus", "", "write the seed range as Go fuzz corpus files into this directory and exit")
	verbose := flag.Bool("v", false, "print every detection, not just the summary")
	flag.Parse()
	if err := f.Validate(); err != nil {
		log.Fatal(err)
	}
	if f.SchemaV1() {
		log.Fatal("fuzz reports have no v1 layout (the kind postdates it); use -schema v2")
	}
	lo, hi, err := parseSeeds(*seeds)
	if err != nil {
		log.Fatal(err)
	}

	if *corpus != "" {
		if err := writeCorpus(*corpus, lo, hi); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d corpus inputs to %s\n", hi-lo, *corpus)
		return
	}

	opts := fuzzgen.Options{
		SeedLo: lo, SeedHi: hi,
		MutantsPerProgram: *mutants,
		Parallel:          f.Parallel,
		Budget:            *budget,
	}
	if *cfgName != "" {
		c, ok := litmus.ConfigByName(*cfgName)
		if !ok {
			log.Fatalf("unknown config %q (want Base, B+M, B+I, or B+M+I)", *cfgName)
		}
		opts.Configs = []litmus.Config{c}
	}

	rep, runErr := fuzzgen.Campaign(context.Background(), opts)
	if f.JSON {
		if !f.Timing {
			for i := range rep.Runs {
				rep.Runs[i].WallMS = 0
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	} else {
		printReport(rep, *verbose)
	}
	if runErr != nil {
		if !f.JSON {
			fmt.Printf("FAIL: %v\n", firstLine(runErr))
		}
		os.Exit(1)
	}
}

// parseSeeds parses "LO:HI" into a non-empty half-open range.
func parseSeeds(s string) (lo, hi uint64, err error) {
	if _, err := fmt.Sscanf(s, "%d:%d", &lo, &hi); err != nil {
		return 0, 0, fmt.Errorf("-seeds %q: want LO:HI", s)
	}
	if lo >= hi {
		return 0, 0, fmt.Errorf("-seeds %q: empty range", s)
	}
	return lo, hi, nil
}

// writeCorpus emits one Go fuzz corpus input per seed, in the encoding
// `go test -fuzz` reads from testdata/fuzz/<FuzzName>/.
func writeCorpus(dir string, lo, hi uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for seed := lo; seed < hi; seed++ {
		body := fmt.Sprintf("go test fuzz v1\nuint64(%d)\n", seed)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%d", seed)), []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// printReport renders the campaign summary: corpus counts, the
// detection table by mutation class and configuration, mask-reason
// histogram, and — under -v or on failure — the detections and shrunk
// repros.
func printReport(rep *fuzzgen.Report, verbose bool) {
	fmt.Printf("fuzz: seeds [%d,%d): %d programs, %d mutants, %d cells",
		rep.SeedLo, rep.SeedHi, rep.Programs, rep.Mutants, rep.Cells)
	if rep.SkippedCells > 0 {
		fmt.Printf(" (%d skipped on budget)", rep.SkippedCells)
	}
	fmt.Println()

	classes := map[string]bool{}
	configs := map[string]bool{}
	for class, byCfg := range rep.Detected {
		classes[class] = true
		for cfg := range byCfg {
			configs[cfg] = true
		}
	}
	for class, byCfg := range rep.Masked {
		classes[class] = true
		for cfg := range byCfg {
			configs[cfg] = true
		}
	}
	for _, class := range sortedKeys(classes) {
		fmt.Printf("  %-16s", class)
		for _, cfg := range sortedKeys(configs) {
			det := rep.Detected[class][cfg]
			tot := det + rep.Masked[class][cfg]
			fmt.Printf("  %s %d/%d", cfg, det, tot)
		}
		fmt.Println()
	}
	if len(rep.MaskReasons) > 0 {
		fmt.Printf("  masked:")
		for _, reason := range sortedKeys(toBoolSet(rep.MaskReasons)) {
			fmt.Printf(" %s=%d", reason, rep.MaskReasons[reason])
		}
		fmt.Println()
	}
	if verbose {
		for _, d := range rep.Detections {
			fmt.Printf("  detect %s/%s: %s at t%d.%d -> %s\n",
				d.Mutant, d.Config, d.Mutation, d.Thread, d.Index, d.Violation)
		}
	}
	for _, r := range rep.Runs {
		if r.Error == "" {
			continue
		}
		fmt.Printf("FAIL %s/%s: %s\n", r.Workload, r.Config, r.Error)
		if r.Repro != "" {
			fmt.Println(indent(r.Repro, "  "))
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func toBoolSet(m map[string]int) map[string]bool {
	s := make(map[string]bool, len(m))
	for k := range m {
		s[k] = true
	}
	return s
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

func firstLine(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + " ..."
	}
	return s
}
