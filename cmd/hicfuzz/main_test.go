package main

// Build-and-run smoke tests, matching the other commands: the binary is
// compiled into a temp dir and driven the way CI drives it, including
// the determinism guarantee of the -json document across worker counts.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/envelope"
	"repro/internal/fuzzgen"
)

func TestParseSeeds(t *testing.T) {
	if lo, hi, err := parseSeeds("1:201"); err != nil || lo != 1 || hi != 201 {
		t.Fatalf("parseSeeds(1:201) = %d, %d, %v", lo, hi, err)
	}
	for _, bad := range []string{"", "5", "9:9", "10:5", "a:b"} {
		if _, _, err := parseSeeds(bad); err == nil {
			t.Errorf("parseSeeds(%q) accepted", bad)
		}
	}
}

func buildFuzz(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hicfuzz")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestFuzzCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildFuzz(t)

	t.Run("text-summary", func(t *testing.T) {
		out, err := exec.Command(bin, "-seeds", "1:9").CombinedOutput()
		if err != nil {
			t.Fatalf("hicfuzz -seeds 1:9: %v\n%s", err, out)
		}
		for _, want := range []string{"fuzz: seeds [1,9): 8 programs", "Base"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("json-deterministic-across-workers", func(t *testing.T) {
		run := func(workers string) []byte {
			out, err := exec.Command(bin, "-seeds", "1:9", "-parallel", workers, "-json").Output()
			if err != nil {
				t.Fatalf("hicfuzz -json -parallel %s: %v", workers, err)
			}
			return out
		}
		a, b := run("1"), run("8")
		if !bytes.Equal(a, b) {
			t.Fatal("-json output differs between 1 and 8 workers")
		}
		var rep fuzzgen.Report
		if err := json.Unmarshal(a, &rep); err != nil {
			t.Fatalf("decoding -json output: %v", err)
		}
		if rep.Schema != envelope.SchemaV2 || rep.Kind != envelope.KindFuzz {
			t.Errorf("schema/kind = %q/%q, want %q/%q", rep.Schema, rep.Kind, envelope.SchemaV2, envelope.KindFuzz)
		}
		if rep.Programs != 8 || len(rep.Runs) != 8*4 {
			t.Errorf("programs = %d, runs = %d", rep.Programs, len(rep.Runs))
		}
		for _, r := range rep.Runs {
			if r.Error != "" {
				t.Errorf("%s/%s: %s", r.Workload, r.Config, r.Error)
			}
		}
	})

	t.Run("config-filter", func(t *testing.T) {
		out, err := exec.Command(bin, "-seeds", "1:5", "-config", "B+M+I", "-json").Output()
		if err != nil {
			t.Fatalf("hicfuzz -config B+M+I: %v", err)
		}
		var rep fuzzgen.Report
		if err := json.Unmarshal(out, &rep); err != nil {
			t.Fatal(err)
		}
		if len(rep.Runs) != 4 {
			t.Errorf("runs = %d, want 4 (one config)", len(rep.Runs))
		}
	})

	t.Run("corpus-emission", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "corpus")
		out, err := exec.Command(bin, "-seeds", "3:6", "-corpus", dir).CombinedOutput()
		if err != nil {
			t.Fatalf("hicfuzz -corpus: %v\n%s", err, out)
		}
		for _, seed := range []string{"3", "4", "5"} {
			body, err := os.ReadFile(filepath.Join(dir, "seed-"+seed))
			if err != nil {
				t.Fatal(err)
			}
			if want := "go test fuzz v1\nuint64(" + seed + ")\n"; string(body) != want {
				t.Errorf("seed-%s = %q, want %q", seed, body, want)
			}
		}
	})

	t.Run("bad-flags-exit-nonzero", func(t *testing.T) {
		for _, args := range [][]string{
			{"-seeds", "9:3"},
			{"-config", "no-such-config"},
			{"-json", "-schema", "v1"},
		} {
			if err := exec.Command(bin, args...).Run(); err == nil {
				t.Errorf("hicfuzz %v accepted", args)
			}
		}
	})
}
