package hic

// Orchestration-level tests of the experiment sweeps: serial and parallel
// execution must emit byte-identical JSON documents, figure assembly must
// not depend on the order of IntraConfigs/InterModes (the latent
// normalization bug: the HCC and Addr baselines used to be read from loop
// variables that were only set once the baseline config had already run),
// and per-run timeouts must fail cells with labeled errors instead of
// hanging the sweep.

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/shapecheck"
)

func encodeDoc(t *testing.T, d *runner.Document) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSerialAndParallelSweepsEmitIdenticalJSON(t *testing.T) {
	serial, err := runInterOpts(context.Background(), ScaleTest, RunOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runInterOpts(context.Background(), ScaleTest, RunOptions{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	sj := encodeDoc(t, serial.Document(ScaleTest))
	pj := encodeDoc(t, parallel.Document(ScaleTest))
	if !bytes.Equal(sj, pj) {
		t.Errorf("serial and parallel inter-block JSON differ:\nserial:\n%s\nparallel:\n%s", sj, pj)
	}
}

func TestSerialAndParallelIntraSweepsEmitIdenticalJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the intra sweep twice")
	}
	serial, err := runIntraOpts(context.Background(), ScaleTest, RunOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runIntraOpts(context.Background(), ScaleTest, RunOptions{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	sj := encodeDoc(t, serial.Document(ScaleTest))
	pj := encodeDoc(t, parallel.Document(ScaleTest))
	if !bytes.Equal(sj, pj) {
		t.Error("serial and parallel intra-block JSON differ")
	}
}

// barHeights flattens a figure into (group, label) -> total height.
func barHeights(f *Figure) map[[2]string]float64 {
	out := make(map[[2]string]float64)
	for _, g := range f.Groups {
		for _, b := range g.Bars {
			var h float64
			for _, s := range b.Segments {
				h += s
			}
			out[[2]string{g.Name, b.Label}] = h
		}
	}
	return out
}

func sameHeights(t *testing.T, what string, ref, got map[[2]string]float64) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d bars vs %d bars", what, len(ref), len(got))
	}
	for k, v := range ref {
		if g, ok := got[k]; !ok || math.Abs(g-v) > 1e-12 {
			t.Errorf("%s: bar %v/%v = %v, want %v", what, k[0], k[1], g, v)
		}
	}
}

// TestIntraAssemblyIndependentOfConfigOrder is the regression test for
// the normalization-order bug: RunIntraBlock used to read hccCycles
// before it was set whenever HCC was not first in IntraConfigs. Keyed
// assembly must produce identical figures for any config order.
func TestIntraAssemblyIndependentOfConfigOrder(t *testing.T) {
	ref, err := RunIntraBlock(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	orig := IntraConfigs
	defer func() { IntraConfigs = orig }()
	// Reverse the order so HCC runs last — the worst case for the old
	// loop-carried baseline.
	IntraConfigs = make([]Config, len(orig))
	for i, c := range orig {
		IntraConfigs[len(orig)-1-i] = c
	}
	shuffled, err := RunIntraBlock(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	sameHeights(t, "Figure 9", barHeights(ref.Figure9), barHeights(shuffled.Figure9))
	sameHeights(t, "Figure 10", barHeights(ref.Figure10), barHeights(shuffled.Figure10))
}

// TestInterAssemblyIndependentOfModeOrder covers the same bug in
// RunInterBlock, where addrWB/addrINV (and hccCycles) were loop-carried:
// with Addr after Addr+L, Figure 11's normalization used stale zeros.
func TestInterAssemblyIndependentOfModeOrder(t *testing.T) {
	ref, err := RunInterBlock(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	orig := InterModes
	defer func() { InterModes = orig }()
	InterModes = make([]Mode, len(orig))
	for i, m := range orig {
		InterModes[len(orig)-1-i] = m
	}
	shuffled, err := RunInterBlock(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	sameHeights(t, "Figure 11", barHeights(ref.Figure11), barHeights(shuffled.Figure11))
	sameHeights(t, "Figure 12", barHeights(ref.Figure12), barHeights(shuffled.Figure12))
}

// TestPerRunTimeoutFailsCellsWithLabels drives the real sweep with an
// unmeetable per-run timeout: every cell must fail with a labeled timeout
// error, the sweep must still terminate with a full set of run records,
// and the partial result must carry no figure groups.
func TestPerRunTimeoutFailsCellsWithLabels(t *testing.T) {
	res, err := runInterOpts(context.Background(), ScaleTest,
		RunOptions{Parallel: 2, Timeout: time.Nanosecond})
	if err == nil {
		t.Fatal("expected timeout errors")
	}
	if !strings.Contains(err.Error(), "exceeded timeout") {
		t.Errorf("error %q does not mention the timeout", err)
	}
	if !strings.Contains(err.Error(), "ep/") {
		t.Errorf("error %q lacks workload/config labels", err)
	}
	if res == nil {
		t.Fatal("partial result missing")
	}
	want := len(InterWorkloads(ScaleTest)) * len(InterModes)
	if len(res.Runs) != want {
		t.Errorf("got %d run records, want %d", len(res.Runs), want)
	}
	for _, r := range res.Runs {
		if r.Error == "" {
			t.Errorf("%s/%s should have timed out", r.Workload, r.Config)
		}
	}
	if len(res.Figure12.Groups) != 0 {
		t.Errorf("figure groups assembled from timed-out runs: %d", len(res.Figure12.Groups))
	}
}

// TestShapecheckPassesOnRealResults is the same gate CI's shape job runs:
// the test-scale sweeps must satisfy every expected ordering.
func TestShapecheckPassesOnRealResults(t *testing.T) {
	intra, err := RunIntraBlock(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := RunInterBlock(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	doc := runner.Merge(intra.Document(ScaleTest), inter.Document(ScaleTest))
	if vs := shapecheck.Check(doc); len(vs) != 0 {
		t.Errorf("expected orderings violated:\n%s", shapecheck.Render(vs))
	}
}
