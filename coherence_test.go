package hic

// Robustness-layer tests at the experiment level: the full sweeps must
// be violation-free under the coherence oracle (the annotation
// discipline really is sufficient, checked read-by-read rather than
// only against final memory), the buggy-annotation experiment must
// detect every injected fault class somewhere in the suite with the
// right violation class attributed, and a sweep under an unmeetably
// tiny per-run timeout must terminate cleanly — no leaked goroutines,
// and completed cells byte-identical to an untimed reference sweep.

import (
	"context"
	"encoding/json"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
)

func TestSweepsAreCoherenceClean(t *testing.T) {
	opts := DefaultRunOptions()
	opts.CheckCoherence = true
	intra, err := runIntraOpts(context.Background(), ScaleTest, opts)
	if err != nil {
		t.Fatalf("intra sweep under the oracle: %v", err)
	}
	inter, err := runInterOpts(context.Background(), ScaleTest, opts)
	if err != nil {
		t.Fatalf("inter sweep under the oracle: %v", err)
	}
	for _, r := range append(intra.Runs, inter.Runs...) {
		if r.ErrorKind != "" {
			t.Errorf("%s/%s: unexpected %s: %s", r.Workload, r.Config, r.ErrorKind, r.Error)
		}
	}
}

// wantViolationClass maps each injected fault class to the violation
// class the oracle must attribute to it.
var wantViolationClass = map[string]string{
	"drop-wb":  "missing-wb",
	"delay-wb": "missing-wb",
	"skip-inv": "missing-inv",
	"meb-cap":  "missing-wb",
	"ieb-lie":  "missing-inv",
}

func TestBuggyAnnotationDetectsEveryFaultClass(t *testing.T) {
	rep, err := RunBuggyAnnotation(context.Background(), ScaleTest)
	if err != nil {
		t.Fatalf("harness failure: %v", err)
	}
	detectedBy := map[string]int{}
	for _, e := range rep.Entries {
		if e.Detected {
			detectedBy[e.Class]++
			if e.Violations == 0 {
				t.Errorf("%s/%s: detected without recorded violations", e.Workload, e.Class)
			}
			if e.Kind != "coherence" {
				t.Errorf("%s/%s: detected with kind %q, want coherence", e.Workload, e.Class, e.Kind)
			}
			if want := wantViolationClass[e.Class]; want != "" && !strings.Contains(e.Error, want) {
				t.Errorf("%s/%s: error lacks %q attribution:\n%s", e.Workload, e.Class, want, e.Error)
			}
		}
	}
	for class := range wantViolationClass {
		if detectedBy[class] == 0 {
			t.Errorf("fault class %s detected in no application", class)
		}
	}
	// raytrace synchronizes with locks and flags, so no whole-cache
	// invalidation masks its faults: it must detect all five classes.
	for _, e := range rep.Entries {
		if e.Workload == "raytrace" && !e.Detected {
			t.Errorf("raytrace/%s: expected detection, got kind %q (%d injected)",
				e.Class, e.Kind, e.Injected)
		}
	}
	injected, detected := rep.Detection()
	t.Logf("matrix: %d/%d injected faults detected", detected, injected)
}

// TestTinyTimeoutSweepTerminatesCleanly drives the intra sweep with a
// per-run timeout most cells cannot meet. The sweep must terminate, the
// workers' guest goroutines must all be reaped (cooperative preemption,
// not abandonment), and every cell that did complete must produce a
// record byte-identical to the untimed reference sweep's.
func TestTinyTimeoutSweepTerminatesCleanly(t *testing.T) {
	ref, err := runIntraOpts(context.Background(), ScaleTest, RunOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	refRec := map[string]runner.RunRecord{}
	walls := make([]float64, 0, len(ref.Runs))
	for _, r := range ref.Runs {
		walls = append(walls, r.WallMS)
		r.WallMS = 0
		refRec[r.Workload+"/"+r.Config] = r
	}
	// A timeout at the reference sweep's median wall time lets roughly
	// half the cells finish whatever the host speed, so both the
	// completed-cell and the preempted-cell paths are exercised.
	sort.Float64s(walls)
	timeout := time.Duration(walls[len(walls)/2]*float64(time.Millisecond)) + time.Millisecond/2

	before := runtime.NumGoroutine()
	res, _ := runIntraOpts(context.Background(), ScaleTest,
		RunOptions{Parallel: 4, Timeout: timeout})
	if res == nil {
		t.Fatal("partial result missing")
	}
	completed, timedOut := 0, 0
	for _, r := range res.Runs {
		switch r.ErrorKind {
		case "":
			completed++
			r.WallMS = 0
			got, _ := json.Marshal(r)
			want, _ := json.Marshal(refRec[r.Workload+"/"+r.Config])
			if string(got) != string(want) {
				t.Errorf("%s/%s: completed record differs from reference:\n got %s\nwant %s",
					r.Workload, r.Config, got, want)
			}
		case "timeout":
			timedOut++
		default:
			t.Errorf("%s/%s: unexpected kind %q: %s", r.Workload, r.Config, r.ErrorKind, r.Error)
		}
	}
	if completed+timedOut != len(res.Runs) || len(res.Runs) != len(ref.Runs) {
		t.Errorf("records: %d completed + %d timed out of %d (reference %d)",
			completed, timedOut, len(res.Runs), len(ref.Runs))
	}
	t.Logf("tiny-timeout sweep: %d completed, %d timed out", completed, timedOut)

	// Preempted engines must reap their guest goroutines; poll because
	// the last worker may still be unwinding when Run returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before sweep, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
